//! Error type shared by the baseline detectors.

use std::fmt;

/// Errors produced by the baseline detectors.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// The fitting inputs were empty or inconsistent.
    InvalidInput(String),
    /// The Ptolemy core framework reported an error (EP reuses its extraction).
    Core(ptolemy_core::CoreError),
    /// The DNN substrate reported an error.
    Nn(ptolemy_nn::NnError),
    /// The random-forest classifier reported an error.
    Forest(ptolemy_forest::ForestError),
    /// The compiler reported an error while pricing a baseline.
    Compiler(ptolemy_compiler::CompilerError),
    /// The hardware model reported an error while pricing a baseline.
    Accel(ptolemy_accel::AccelError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidInput(msg) => write!(f, "invalid baseline input: {msg}"),
            BaselineError::Core(e) => write!(f, "ptolemy core error: {e}"),
            BaselineError::Nn(e) => write!(f, "dnn substrate error: {e}"),
            BaselineError::Forest(e) => write!(f, "classifier error: {e}"),
            BaselineError::Compiler(e) => write!(f, "compiler error: {e}"),
            BaselineError::Accel(e) => write!(f, "hardware model error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::InvalidInput(_) => None,
            BaselineError::Core(e) => Some(e),
            BaselineError::Nn(e) => Some(e),
            BaselineError::Forest(e) => Some(e),
            BaselineError::Compiler(e) => Some(e),
            BaselineError::Accel(e) => Some(e),
        }
    }
}

impl From<ptolemy_core::CoreError> for BaselineError {
    fn from(e: ptolemy_core::CoreError) -> Self {
        BaselineError::Core(e)
    }
}

impl From<ptolemy_nn::NnError> for BaselineError {
    fn from(e: ptolemy_nn::NnError) -> Self {
        BaselineError::Nn(e)
    }
}

impl From<ptolemy_forest::ForestError> for BaselineError {
    fn from(e: ptolemy_forest::ForestError) -> Self {
        BaselineError::Forest(e)
    }
}

impl From<ptolemy_compiler::CompilerError> for BaselineError {
    fn from(e: ptolemy_compiler::CompilerError) -> Self {
        BaselineError::Compiler(e)
    }
}

impl From<ptolemy_accel::AccelError> for BaselineError {
    fn from(e: ptolemy_accel::AccelError) -> Self {
        BaselineError::Accel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BaselineError::InvalidInput("empty".into());
        assert!(e.to_string().contains("empty"));
        assert!(std::error::Error::source(&e).is_none());

        let e: BaselineError = ptolemy_nn::NnError::EmptyDataset.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: BaselineError = ptolemy_core::CoreError::InvalidInput("x".into()).into();
        assert!(e.to_string().contains("core"));
    }
}
