//! The DeepFense baseline (Rouhani et al., ICCAD 2018): online accelerated defense
//! through redundant latent "defender" models.
//!
//! DeepFense attaches N extra latent models to a victim network; each defender
//! watches the activations of one intermediate layer and votes on whether the input
//! lies on the benign data manifold.  The published configurations differ in the
//! number of defenders — 1 (`DFL`), 8 (`DFM`) and 16 (`DFH`) — trading detection
//! accuracy for overhead, because every defender is an extra network that must run
//! at inference time.
//!
//! The paper re-implements DeepFense on the Ptolemy hardware substrate for a fair
//! comparison (Sec. VII-D); this module does the same: each defender is a small MLP
//! over pooled latent activations built from the `ptolemy-nn` substrate, and its
//! cost is priced by running the defender through the `ptolemy-accel` inference
//! model on the same accelerator configuration.

use ptolemy_accel::{HardwareConfig, Simulator};
use ptolemy_nn::{zoo, Network, TrainConfig, Trainer};
use ptolemy_tensor::{Rng64, Tensor};

use crate::{BaselineDetector, BaselineError, Result};

/// Dimension every latent tap is pooled down to before entering a defender.
const LATENT_FEATURES: usize = 16;

/// The published DeepFense operating points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeepFenseVariant {
    /// One latent defender (lowest overhead, lowest accuracy).
    Light,
    /// Eight latent defenders.
    Medium,
    /// Sixteen latent defenders (highest overhead, highest accuracy).
    High,
}

impl DeepFenseVariant {
    /// Number of redundant defender models of this operating point.
    pub fn num_modules(&self) -> usize {
        match self {
            DeepFenseVariant::Light => 1,
            DeepFenseVariant::Medium => 8,
            DeepFenseVariant::High => 16,
        }
    }

    /// Name used in the paper's figures (`DFL` / `DFM` / `DFH`).
    pub fn label(&self) -> &'static str {
        match self {
            DeepFenseVariant::Light => "DFL",
            DeepFenseVariant::Medium => "DFM",
            DeepFenseVariant::High => "DFH",
        }
    }
}

/// One latent defender: a tap layer plus a small MLP over its pooled activations.
#[derive(Debug)]
struct Defender {
    tap_layer: usize,
    model: Network,
}

/// The DeepFense redundant-defender detector.
#[derive(Debug)]
pub struct DeepFenseDefense {
    variant: DeepFenseVariant,
    defenders: Vec<Defender>,
}

/// Pools the activations of `layer` into a fixed [`LATENT_FEATURES`]-dimensional
/// latent feature vector (channel-mean pooling followed by chunked averaging).
fn latent_features(network: &Network, input: &Tensor, layer: usize) -> Result<Tensor> {
    let trace = network.forward_trace(input)?;
    let out = trace.output(layer);
    let dims = out.dims();
    let coarse: Vec<f32> = if dims.len() == 3 {
        let (c, hw) = (dims[0], dims[1] * dims[2]);
        (0..c)
            .map(|ch| {
                let slice = &out.as_slice()[ch * hw..(ch + 1) * hw];
                slice.iter().sum::<f32>() / hw as f32
            })
            .collect()
    } else {
        out.as_slice().to_vec()
    };
    let groups = coarse.len().clamp(1, LATENT_FEATURES);
    let chunk = coarse.len().div_ceil(groups);
    let mut pooled: Vec<f32> = coarse
        .chunks(chunk)
        .map(|c| c.iter().sum::<f32>() / c.len() as f32)
        .collect();
    pooled.resize(LATENT_FEATURES, 0.0);
    Tensor::from_vec(pooled, &[LATENT_FEATURES]).map_err(|e| {
        BaselineError::InvalidInput(format!("latent feature construction failed: {e}"))
    })
}

impl DeepFenseDefense {
    /// Trains `variant.num_modules()` latent defenders on benign and adversarial
    /// calibration inputs.
    ///
    /// Defenders tap the victim's weight layers round-robin so the ensemble watches
    /// different depths, mirroring DeepFense's per-layer latent models.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidInput`] for empty calibration sets and
    /// propagates substrate errors.
    pub fn fit(
        network: &Network,
        variant: DeepFenseVariant,
        benign: &[Tensor],
        adversarial: &[Tensor],
        seed: u64,
    ) -> Result<Self> {
        if benign.is_empty() || adversarial.is_empty() {
            return Err(BaselineError::InvalidInput(
                "DeepFense needs benign and adversarial calibration inputs".into(),
            ));
        }
        let taps = network.weight_layer_indices();
        if taps.is_empty() {
            return Err(BaselineError::InvalidInput(
                "victim network has no weight layers to tap".into(),
            ));
        }
        let mut rng = Rng64::new(seed);
        let mut defenders = Vec::with_capacity(variant.num_modules());
        for module in 0..variant.num_modules() {
            // Skip the final classifier layer: its activations are the logits the
            // attack already controls, so it carries no manifold information.
            let usable = &taps[..taps.len().saturating_sub(1).max(1)];
            let tap_layer = usable[module % usable.len()];
            let mut samples: Vec<(Tensor, usize)> =
                Vec::with_capacity(benign.len() + adversarial.len());
            for input in benign {
                samples.push((latent_features(network, input, tap_layer)?, 0));
            }
            for input in adversarial {
                samples.push((latent_features(network, input, tap_layer)?, 1));
            }
            let mut model = zoo::mlp_net(&[LATENT_FEATURES], 2, &mut rng)?;
            Trainer::new(TrainConfig {
                epochs: 15,
                seed: seed ^ module as u64,
                ..TrainConfig::default()
            })
            .fit(&mut model, &samples)?;
            defenders.push(Defender { tap_layer, model });
        }
        Ok(DeepFenseDefense { variant, defenders })
    }

    /// The operating point this detector was built for.
    pub fn variant(&self) -> DeepFenseVariant {
        self.variant
    }

    /// Number of redundant defender models.
    pub fn num_modules(&self) -> usize {
        self.defenders.len()
    }

    /// Latency and energy of victim + defenders relative to the victim alone,
    /// priced on the shared accelerator (`(latency_factor, energy_factor)`).
    ///
    /// # Errors
    ///
    /// Propagates hardware-model errors.
    pub fn cost(&self, network: &Network, config: &HardwareConfig) -> Result<(f64, f64)> {
        let sim = Simulator::new(*config)?;
        let victim = sim.inference_report(network)?;
        let mut total_cycles = victim.inference_cycles as f64;
        let mut total_energy = victim.inference_energy_pj;
        for defender in &self.defenders {
            let report = sim.inference_report(&defender.model)?;
            // The defender cannot start before its tap layer's activations exist and
            // shares the PE array with the victim, so its cycles serialise.
            total_cycles += report.inference_cycles as f64;
            total_energy += report.inference_energy_pj;
        }
        Ok((
            total_cycles / victim.inference_cycles as f64,
            total_energy / victim.inference_energy_pj,
        ))
    }
}

impl BaselineDetector for DeepFenseDefense {
    fn name(&self) -> &'static str {
        "DeepFense"
    }

    fn online(&self) -> bool {
        true
    }

    fn score(&self, network: &Network, input: &Tensor) -> Result<f32> {
        let mut total = 0.0f32;
        for defender in &self.defenders {
            let features = latent_features(network, input, defender.tap_layer)?;
            let logits = defender.model.forward(&features)?;
            let slice = logits.as_slice();
            if slice.len() < 2 {
                return Err(BaselineError::InvalidInput(
                    "defender produced fewer than two logits".into(),
                ));
            }
            // Softmax probability of the "adversarial" class.
            let max = slice.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = slice.iter().map(|v| (v - max).exp()).collect();
            total += exps[1] / exps.iter().sum::<f32>();
        }
        Ok(total / self.defenders.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_nn::zoo;
    use ptolemy_tensor::Rng64;

    fn victim_and_data() -> (Network, Vec<Tensor>, Vec<Tensor>) {
        let mut rng = Rng64::new(21);
        let net = zoo::lenet(2, 2, &mut rng).unwrap();
        let benign: Vec<Tensor> = (0..10)
            .map(|_| {
                Tensor::from_vec(
                    (0..128).map(|_| 0.5 + 0.05 * rng.normal()).collect(),
                    &[2, 8, 8],
                )
                .unwrap()
            })
            .collect();
        let adversarial: Vec<Tensor> = (0..10)
            .map(|_| {
                Tensor::from_vec((0..128).map(|_| 2.0 * rng.normal()).collect(), &[2, 8, 8])
                    .unwrap()
            })
            .collect();
        (net, benign, adversarial)
    }

    #[test]
    fn variants_expose_the_published_module_counts() {
        assert_eq!(DeepFenseVariant::Light.num_modules(), 1);
        assert_eq!(DeepFenseVariant::Medium.num_modules(), 8);
        assert_eq!(DeepFenseVariant::High.num_modules(), 16);
        assert_eq!(DeepFenseVariant::Light.label(), "DFL");
        assert_eq!(DeepFenseVariant::High.label(), "DFH");
    }

    #[test]
    fn fit_rejects_empty_calibration_sets() {
        let (net, benign, adversarial) = victim_and_data();
        assert!(
            DeepFenseDefense::fit(&net, DeepFenseVariant::Light, &[], &adversarial, 0).is_err()
        );
        assert!(DeepFenseDefense::fit(&net, DeepFenseVariant::Light, &benign, &[], 0).is_err());
    }

    #[test]
    fn scores_are_probabilities_and_separate_obvious_outliers() {
        let (net, benign, adversarial) = victim_and_data();
        let df =
            DeepFenseDefense::fit(&net, DeepFenseVariant::Light, &benign, &adversarial, 7).unwrap();
        assert_eq!(df.num_modules(), 1);
        assert_eq!(df.variant(), DeepFenseVariant::Light);
        assert!(df.online());
        assert_eq!(df.name(), "DeepFense");
        let b = df.score(&net, &benign[0]).unwrap();
        let a = df.score(&net, &adversarial[0]).unwrap();
        assert!((0.0..=1.0).contains(&b));
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn more_modules_cost_more() {
        let (net, benign, adversarial) = victim_and_data();
        let light =
            DeepFenseDefense::fit(&net, DeepFenseVariant::Light, &benign, &adversarial, 1).unwrap();
        let high =
            DeepFenseDefense::fit(&net, DeepFenseVariant::High, &benign, &adversarial, 1).unwrap();
        let cfg = HardwareConfig::default();
        let (l_lat, l_en) = light.cost(&net, &cfg).unwrap();
        let (h_lat, h_en) = high.cost(&net, &cfg).unwrap();
        assert!(l_lat >= 1.0 && l_en >= 1.0);
        assert!(h_lat > l_lat, "DFH latency {h_lat} vs DFL {l_lat}");
        assert!(h_en > l_en);
    }
}
