//! The path-prefix result cache: an LRU map from activation-path prefix
//! fingerprints to served verdicts.
//!
//! Repeated and near-duplicate inputs (the common case in real traffic — think
//! retries, frame-to-frame video redundancy, replayed probes) activate the same
//! early-layer important neurons, so their
//! [`ptolemy_core::ActivationPath::prefix_fingerprint`] collides by
//! construction.  Caching the final verdict under that fingerprint lets the
//! server skip classifier re-scoring and — far more importantly under tiered
//! routing — the expensive tier-2 re-extraction for such inputs.
//!
//! The cache trades exactness for throughput: two inputs whose paths agree on
//! the first `prefix_segments` extraction layers share a verdict.  Serving with
//! the cache disabled is bit-for-bit identical to direct engine calls; that
//! parity is what the serve test-suite pins down.
//!
//! In front of the path-prefix map the server keeps an equally-sized LRU from
//! *input* fingerprints to path-prefix keys, so a byte-identical repeat skips
//! even the screening extraction — the path-prefix level then catches the
//! near-duplicates whose bytes differ but whose early-layer paths collide.

use std::collections::HashMap;

/// Configuration of the path-prefix result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of cached verdicts (least-recently-used eviction).
    pub capacity: usize,
    /// Number of leading path segments (in extraction order) hashed into the
    /// cache key.  Fewer segments mean coarser matching and more hits; pass
    /// `usize::MAX` to key on the entire path (exact-duplicate matching only).
    pub prefix_segments: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 1024,
            prefix_segments: 2,
        }
    }
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map from `u64` fingerprints to values.
///
/// Entries live in a slab indexed by an intrusive doubly-linked recency list,
/// so `get` and `insert` are O(1); the slab never reallocates after the cache
/// first fills.
#[derive(Debug)]
pub struct LruCache<V> {
    map: HashMap<u64, usize>,
    slots: Vec<Slot<V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<V> LruCache<V> {
    /// Creates an empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (the server builder validates this first).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU cache capacity must be nonzero");
        LruCache {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        let slot = *self.map.get(&key)?;
        self.touch(slot);
        Some(&self.slots[slot].value)
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used entry if
    /// the cache is full.  The inserted entry becomes most-recently-used.
    pub fn insert(&mut self, key: u64, value: V) {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = value;
            self.touch(slot);
            return;
        }
        let slot = if self.map.len() < self.capacity {
            self.slots.push(Slot {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            // Reuse the least-recently-used slot.
            let slot = self.tail;
            self.unlink(slot);
            self.map.remove(&self.slots[slot].key);
            self.slots[slot].key = key;
            self.slots[slot].value = value;
            slot
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    fn touch(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_replace() {
        let mut cache = LruCache::new(2);
        assert!(cache.is_empty());
        cache.insert(1, "a");
        cache.insert(2, "b");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.capacity(), 2);
        assert_eq!(cache.get(1), Some(&"a"));
        assert_eq!(cache.get(3), None);
        cache.insert(1, "a2");
        assert_eq!(cache.get(1), Some(&"a2"));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert(1, 1);
        cache.insert(2, 2);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(cache.get(1), Some(&1));
        cache.insert(3, 3);
        assert_eq!(cache.get(2), None, "LRU entry must be evicted");
        assert_eq!(cache.get(1), Some(&1));
        assert_eq!(cache.get(3), Some(&3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn single_slot_cache_cycles() {
        let mut cache = LruCache::new(1);
        for i in 0..10u64 {
            cache.insert(i, i);
            assert_eq!(cache.get(i), Some(&i));
            assert_eq!(cache.len(), 1);
            if i > 0 {
                assert_eq!(cache.get(i - 1), None);
            }
        }
    }

    #[test]
    fn eviction_order_follows_recency_under_churn() {
        let mut cache = LruCache::new(3);
        for i in 0..3u64 {
            cache.insert(i, i);
        }
        // Recency now 2 > 1 > 0; touch 0 -> 0 > 2 > 1.
        cache.get(0);
        cache.insert(3, 3); // evicts 1
        cache.insert(4, 4); // evicts 2
        assert_eq!(cache.get(1), None);
        assert_eq!(cache.get(2), None);
        assert!(cache.get(0).is_some() && cache.get(3).is_some() && cache.get(4).is_some());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u8>::new(0);
    }
}
