//! The path-prefix result cache: an LRU map from activation-path prefix
//! fingerprints to served verdicts.
//!
//! Repeated and near-duplicate inputs (the common case in real traffic — think
//! retries, frame-to-frame video redundancy, replayed probes) activate the same
//! early-layer important neurons, so their
//! [`ptolemy_core::ActivationPath::prefix_fingerprint`] collides by
//! construction.  Caching the final verdict under that fingerprint lets the
//! server skip classifier re-scoring and — far more importantly under tiered
//! routing — the expensive tier-2 re-extraction for such inputs.
//!
//! The cache trades exactness for throughput: two inputs whose paths agree on
//! the first `prefix_segments` extraction layers share a verdict.  Serving with
//! the cache disabled is bit-for-bit identical to direct engine calls; that
//! parity is what the serve test-suite pins down.
//!
//! In front of the path-prefix map the server keeps an equally-sized LRU from
//! *input* fingerprints to path-prefix keys, so a byte-identical repeat skips
//! even the screening extraction — the path-prefix level then catches the
//! near-duplicates whose bytes differ but whose early-layer paths collide.
//!
//! With [`CacheConfig::persist_path`] set, the cache also survives restarts:
//! the server serialises the LRU (in recency order, bit-exact verdicts) to
//! disk on shutdown and reloads it on start, but **only** when the persisted
//! file was written by an identical engine — see [`CacheConfig`] for the
//! format and the fingerprint-mismatch behaviour.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use ptolemy_core::json::{self, JsonValue};
use ptolemy_core::Detection;

use crate::server::Tier;

/// Configuration of the path-prefix result cache.
///
/// # Persistence format
///
/// With [`CacheConfig::persist_path`] set, [`crate::Server::shutdown`] (or
/// drop) writes the cache to that path as a JSON document produced by the
/// workspace's hand-rolled [`ptolemy_core::json`] module:
///
/// ```json
/// {"version":1,
///  "engine_fingerprint":"fw|ab0.05|…",
///  "prefix_segments":2,
///  "entries":[{"key":"1f9a…","tier":0,"is_adversary":1,
///              "score":"3f2e147b","similarity":"3e99999a","predicted_class":3}, …]}
/// ```
///
/// `key` is the path-prefix cache key and `score`/`similarity` are the
/// verdict's IEEE-754 bit patterns, all hex-encoded — a reloaded entry replays
/// the original verdict **bit for bit**.  `entries` are ordered most- to
/// least-recently used, so a restarted server also inherits the eviction
/// order.
///
/// # Fingerprint-mismatch behaviour
///
/// On start the server reloads the file only if `engine_fingerprint` equals
/// the *screening* engine's build-time [`ptolemy_core::DetectionEngine::fingerprint`]
/// (cache keys are seeded with it) **and** `prefix_segments` matches this
/// configuration.  A missing file starts cold silently; a mismatched, corrupt
/// or unreadable file is **ignored** — the server starts with an empty cache
/// and reports it in [`crate::ServeStats::cache_load_rejected`] instead of
/// serving another engine's verdicts or failing startup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of cached verdicts (least-recently-used eviction).
    pub capacity: usize,
    /// Number of leading path segments (in extraction order) hashed into the
    /// cache key.  Fewer segments mean coarser matching and more hits; pass
    /// `usize::MAX` to key on the entire path (exact-duplicate matching only).
    pub prefix_segments: usize,
    /// Where to persist the cache across restarts: loaded on
    /// [`crate::ServerBuilder::start`], written on shutdown.  `None` (the
    /// default) keeps the cache purely in memory.
    pub persist_path: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 1024,
            prefix_segments: 2,
            persist_path: None,
        }
    }
}

/// A served verdict as stored in the path-prefix cache: the detection plus the
/// tier that produced it (so replayed hits report their original provenance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CachedVerdict {
    pub(crate) detection: Detection,
    pub(crate) tier: Tier,
}

/// Format version of the persisted cache file.
const PERSIST_VERSION: u64 = 1;

/// Outcome of trying to reload a persisted cache file.
pub(crate) enum CacheLoad {
    /// No file at the configured path: start cold, not an error.
    Missing,
    /// The file exists but is corrupt, unreadable or was written by a
    /// different engine/prefix configuration: ignored (counted in
    /// [`crate::ServeStats::cache_load_rejected`]).
    Rejected,
    /// Entries restored from disk, most-recently-used first.
    Loaded(Vec<(u64, CachedVerdict)>),
}

/// Reloads a persisted cache written by an engine whose fingerprint and prefix
/// depth match; anything else is [`CacheLoad::Rejected`].
pub(crate) fn load_persisted(path: &Path, fingerprint: &str, prefix_segments: usize) -> CacheLoad {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheLoad::Missing,
        Err(_) => return CacheLoad::Rejected,
    };
    match parse_persisted(&text, fingerprint, prefix_segments) {
        Some(entries) => CacheLoad::Loaded(entries),
        None => CacheLoad::Rejected,
    }
}

fn parse_persisted(
    text: &str,
    fingerprint: &str,
    prefix_segments: usize,
) -> Option<Vec<(u64, CachedVerdict)>> {
    let doc = json::parse(text).ok()?;
    if doc.get("version")?.as_u64()? != PERSIST_VERSION
        || doc.get("engine_fingerprint")?.as_str()? != fingerprint
        || doc.get("prefix_segments")?.as_u64()? != prefix_segments as u64
    {
        return None;
    }
    doc.get("entries")?
        .as_array()?
        .iter()
        .map(parse_entry)
        .collect()
}

fn parse_entry(entry: &JsonValue) -> Option<(u64, CachedVerdict)> {
    let key = u64::from_str_radix(entry.get("key")?.as_str()?, 16).ok()?;
    let tier = match entry.get("tier")?.as_u64()? {
        0 => Tier::Screen,
        1 => Tier::Escalated,
        _ => return None,
    };
    let is_adversary = match entry.get("is_adversary")?.as_u64()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let bits = |field: &str| -> Option<f32> {
        let raw = entry.get(field)?.as_str()?;
        Some(f32::from_bits(u32::from_str_radix(raw, 16).ok()?))
    };
    Some((
        key,
        CachedVerdict {
            detection: Detection {
                is_adversary,
                score: bits("score")?,
                similarity: bits("similarity")?,
                predicted_class: entry.get("predicted_class")?.as_u64()? as usize,
            },
            tier,
        },
    ))
}

/// Writes the cache to `path` in the [`CacheConfig`] persistence format
/// (entries most-recently-used first).  Returns the number of entries written.
pub(crate) fn persist(
    path: &Path,
    fingerprint: &str,
    prefix_segments: usize,
    cache: &LruCache<CachedVerdict>,
) -> std::io::Result<usize> {
    let entries: Vec<JsonValue> = cache
        .iter()
        .map(|(key, cached)| {
            JsonValue::Object(vec![
                ("key".into(), JsonValue::String(format!("{key:x}"))),
                (
                    "tier".into(),
                    JsonValue::UInt(match cached.tier {
                        Tier::Screen => 0,
                        Tier::Escalated => 1,
                    }),
                ),
                (
                    "is_adversary".into(),
                    JsonValue::UInt(u64::from(cached.detection.is_adversary)),
                ),
                (
                    "score".into(),
                    JsonValue::String(format!("{:08x}", cached.detection.score.to_bits())),
                ),
                (
                    "similarity".into(),
                    JsonValue::String(format!("{:08x}", cached.detection.similarity.to_bits())),
                ),
                (
                    "predicted_class".into(),
                    JsonValue::UInt(cached.detection.predicted_class as u64),
                ),
            ])
        })
        .collect();
    let count = entries.len();
    let doc = JsonValue::Object(vec![
        ("version".into(), JsonValue::UInt(PERSIST_VERSION)),
        (
            "engine_fingerprint".into(),
            JsonValue::String(fingerprint.to_string()),
        ),
        (
            "prefix_segments".into(),
            JsonValue::UInt(prefix_segments as u64),
        ),
        ("entries".into(), JsonValue::Array(entries)),
    ]);
    // Write-to-temp then rename: a shutdown killed mid-flush must not tear
    // the previous run's valid file (a torn file would be rejected on the
    // next start and the warm cache lost).
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, doc.to_json())?;
    std::fs::rename(&tmp, path)?;
    Ok(count)
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map from `u64` fingerprints to values.
///
/// Entries live in a slab indexed by an intrusive doubly-linked recency list,
/// so `get` and `insert` are O(1); the slab never reallocates after the cache
/// first fills.
#[derive(Debug)]
pub struct LruCache<V> {
    map: HashMap<u64, usize>,
    slots: Vec<Slot<V>>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<V> LruCache<V> {
    /// Creates an empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (the server builder validates this first).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU cache capacity must be nonzero");
        LruCache {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates the cached `(key, value)` pairs from most- to least-recently
    /// used, without touching recency (used by cache persistence, so the saved
    /// file reproduces the eviction order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        std::iter::successors((self.head != NIL).then_some(self.head), move |&slot| {
            let next = self.slots[slot].next;
            (next != NIL).then_some(next)
        })
        .map(move |slot| (self.slots[slot].key, &self.slots[slot].value))
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        let slot = *self.map.get(&key)?;
        self.touch(slot);
        Some(&self.slots[slot].value)
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used entry if
    /// the cache is full.  The inserted entry becomes most-recently-used.
    pub fn insert(&mut self, key: u64, value: V) {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = value;
            self.touch(slot);
            return;
        }
        let slot = if self.map.len() < self.capacity {
            self.slots.push(Slot {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            // Reuse the least-recently-used slot.
            let slot = self.tail;
            self.unlink(slot);
            self.map.remove(&self.slots[slot].key);
            self.slots[slot].key = key;
            self.slots[slot].value = value;
            slot
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    fn touch(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_replace() {
        let mut cache = LruCache::new(2);
        assert!(cache.is_empty());
        cache.insert(1, "a");
        cache.insert(2, "b");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.capacity(), 2);
        assert_eq!(cache.get(1), Some(&"a"));
        assert_eq!(cache.get(3), None);
        cache.insert(1, "a2");
        assert_eq!(cache.get(1), Some(&"a2"));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert(1, 1);
        cache.insert(2, 2);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(cache.get(1), Some(&1));
        cache.insert(3, 3);
        assert_eq!(cache.get(2), None, "LRU entry must be evicted");
        assert_eq!(cache.get(1), Some(&1));
        assert_eq!(cache.get(3), Some(&3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn single_slot_cache_cycles() {
        let mut cache = LruCache::new(1);
        for i in 0..10u64 {
            cache.insert(i, i);
            assert_eq!(cache.get(i), Some(&i));
            assert_eq!(cache.len(), 1);
            if i > 0 {
                assert_eq!(cache.get(i - 1), None);
            }
        }
    }

    #[test]
    fn eviction_order_follows_recency_under_churn() {
        let mut cache = LruCache::new(3);
        for i in 0..3u64 {
            cache.insert(i, i);
        }
        // Recency now 2 > 1 > 0; touch 0 -> 0 > 2 > 1.
        cache.get(0);
        cache.insert(3, 3); // evicts 1
        cache.insert(4, 4); // evicts 2
        assert_eq!(cache.get(1), None);
        assert_eq!(cache.get(2), None);
        assert!(cache.get(0).is_some() && cache.get(3).is_some() && cache.get(4).is_some());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u8>::new(0);
    }

    #[test]
    fn iter_walks_recency_order_without_touching_it() {
        let mut cache = LruCache::new(3);
        assert_eq!(cache.iter().count(), 0);
        for i in 0..3u64 {
            cache.insert(i, i * 10);
        }
        cache.get(0); // recency now 0 > 2 > 1
        let order: Vec<(u64, u64)> = cache.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(order, vec![(0, 0), (2, 20), (1, 10)]);
        // Iterating twice yields the same order: iter is read-only.
        let again: Vec<u64> = cache.iter().map(|(k, _)| k).collect();
        assert_eq!(again, vec![0, 2, 1]);
    }

    fn verdict(score: f32, tier: Tier) -> CachedVerdict {
        CachedVerdict {
            detection: Detection {
                is_adversary: score >= 0.5,
                score,
                similarity: 1.0 - score,
                predicted_class: 7,
            },
            tier,
        }
    }

    fn temp_file(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ptolemy-cache-{}-{name}.json", std::process::id()))
    }

    #[test]
    fn persisted_cache_roundtrips_bit_exactly_in_recency_order() {
        let path = temp_file("roundtrip");
        let mut cache = LruCache::new(8);
        // Include awkward floats: negative-zero score survives only if the
        // serialisation is bit-exact.
        cache.insert(1, verdict(-0.0, Tier::Screen));
        cache.insert(2, verdict(0.75, Tier::Escalated));
        cache.get(1);
        let written = persist(&path, "fp-a", 2, &cache).unwrap();
        assert_eq!(written, 2);

        match load_persisted(&path, "fp-a", 2) {
            CacheLoad::Loaded(entries) => {
                assert_eq!(entries.len(), 2);
                // MRU first: key 1 was touched last.
                assert_eq!(entries[0].0, 1);
                assert_eq!(entries[0].1.detection.score.to_bits(), (-0.0f32).to_bits());
                assert_eq!(entries[1].1, *cache.get(2).unwrap());
            }
            _ => panic!("expected a loaded cache"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_or_corrupt_persisted_caches_are_rejected() {
        let path = temp_file("reject");
        let mut cache = LruCache::new(4);
        cache.insert(9, verdict(0.25, Tier::Screen));
        persist(&path, "fp-a", 3, &cache).unwrap();

        // Wrong engine fingerprint and wrong prefix depth are both rejected.
        assert!(matches!(
            load_persisted(&path, "fp-b", 3),
            CacheLoad::Rejected
        ));
        assert!(matches!(
            load_persisted(&path, "fp-a", 2),
            CacheLoad::Rejected
        ));
        // The matching configuration still loads.
        assert!(matches!(
            load_persisted(&path, "fp-a", 3),
            CacheLoad::Loaded(_)
        ));
        // Corrupt bytes are rejected; a missing file is merely missing.
        std::fs::write(&path, "not json at all").unwrap();
        assert!(matches!(
            load_persisted(&path, "fp-a", 3),
            CacheLoad::Rejected
        ));
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            load_persisted(&path, "fp-a", 3),
            CacheLoad::Missing
        ));
    }
}
