//! Adaptive batch sizing driven by [`BackendEstimate`].
//!
//! The batch former accumulates queued requests and cuts a batch when either
//! (a) the oldest queued request has waited out the latency budget, or (b) the
//! batch has reached the *adaptive cap* — the largest size whose modelled
//! execution latency on the screening engine's backend stays within the target.
//! The cap therefore differs per backend: an
//! [`ptolemy_core::SoftwareBackend`]-bound engine is capped through its
//! algorithm-level op counts (converted to a pseudo-latency by
//! [`BatchPolicy::software_ops_per_ms`]), while an accelerator-bound engine is
//! capped through the cycle model's modelled milliseconds — exactly the
//! `estimate_batch` contract the engine API exposes.

use std::time::Duration;

use ptolemy_core::{BackendEstimate, DetectionEngine};

/// Policy knobs of the adaptive batch former.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Hard upper bound on requests per batch, whatever the backend estimate
    /// says.
    pub max_batch: usize,
    /// How long the former waits for more requests after the *oldest* queued
    /// request arrived before cutting an undersized batch anyway.
    ///
    /// This trades queue latency for batch size: under sparse traffic every
    /// request can wait up to the full budget.  Batches execute **fused** (one
    /// batched im2col/matmul trace per formed batch), so a larger batch
    /// amortises weight streaming across its inputs; latency-critical
    /// deployments can still set this to [`Duration::ZERO`], which cuts a
    /// batch the moment a worker is free.
    pub latency_budget: Duration,
    /// Target modelled execution latency for one batch, in milliseconds; the
    /// former cuts before the backend estimate would exceed it.
    pub target_batch_latency_ms: f64,
    /// Operation throughput (ops per millisecond) used to turn software-backend
    /// op counts into a pseudo-latency, since [`ptolemy_core::SoftwareBackend`]
    /// reports algorithm-level counts rather than wall-clock time.
    pub software_ops_per_ms: f64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 32,
            latency_budget: Duration::from_millis(2),
            target_batch_latency_ms: 5.0,
            software_ops_per_ms: 5.0e5,
        }
    }
}

impl BatchPolicy {
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1".into());
        }
        if !self.target_batch_latency_ms.is_finite() || self.target_batch_latency_ms <= 0.0 {
            return Err(format!(
                "target_batch_latency_ms {} must be finite and positive",
                self.target_batch_latency_ms
            ));
        }
        if !self.software_ops_per_ms.is_finite() || self.software_ops_per_ms <= 0.0 {
            return Err(format!(
                "software_ops_per_ms {} must be finite and positive",
                self.software_ops_per_ms
            ));
        }
        Ok(())
    }
}

/// Modelled latency of the estimated batch, in milliseconds: the backend's own
/// number when it models wall-clock time, otherwise a pseudo-latency derived
/// from the software op counts.  `None` when the backend models neither.
///
/// Estimates price the whole batch as one fused program (the
/// [`BackendEstimate`] contract), so the software op counts already cover
/// every input — no per-input multiplication here.
pub(crate) fn predicted_latency_ms(
    estimate: &BackendEstimate,
    policy: &BatchPolicy,
) -> Option<f64> {
    if let Some(ms) = estimate.latency_ms {
        return Some(ms);
    }
    estimate.software.as_ref().map(|report| {
        let batch_ops = report.inference_macs
            + report.sort_elements
            + report.compare_ops
            + report.accumulate_ops;
        batch_ops as f64 / policy.software_ops_per_ms
    })
}

/// The adaptive cap: the largest batch size within `policy.max_batch` whose
/// predicted latency on `engine`'s backend stays within the target, at the
/// given activation-path density (the parameter the backend cost models scale
/// with).
///
/// Always at least 1 — a backend too slow for even a single input within the
/// target still has to serve one at a time.  Backends that model no cost at
/// all impose no adaptive constraint.
pub(crate) fn adaptive_cap(engine: &DetectionEngine, policy: &BatchPolicy, density: f32) -> usize {
    let per_input = engine
        .estimate_batch(1, density)
        .ok()
        .and_then(|estimate| predicted_latency_ms(&estimate, policy));
    let Some(per_input) = per_input else {
        return policy.max_batch;
    };
    if per_input <= 0.0 || !per_input.is_finite() {
        return policy.max_batch;
    }
    let mut cap =
        ((policy.target_batch_latency_ms / per_input) as usize).clamp(1, policy.max_batch);
    // Both in-tree cost models are linear in batch size, so the division above
    // is exact — but verify against the real batch estimate and back off in
    // case a custom backend models super-linear batch cost.
    while cap > 1 {
        let predicted = engine
            .estimate_batch(cap, density)
            .ok()
            .and_then(|estimate| predicted_latency_ms(&estimate, policy));
        match predicted {
            Some(ms) if ms > policy.target_batch_latency_ms => cap /= 2,
            _ => break,
        }
    }
    cap.max(1)
}

/// Shard-aware adaptive cap: the batch must fit the latency target on **every**
/// engine a batch might touch — the screening engine and each escalation
/// shard — so the cap is the minimum of the per-engine caps.
///
/// This is deliberately the worst case (a whole batch landing in the
/// uncertainty band and escalating to one shard): a cap that only modelled the
/// screen would let an expensive tier-2 program blow the latency target
/// whenever traffic turned suspicious, which is exactly when predictable
/// latency matters most.  Without escalation shards this degenerates to the
/// plain screen-only [`adaptive_cap`].
pub(crate) fn adaptive_cap_tiered(
    screen: &DetectionEngine,
    shards: &[std::sync::Arc<DetectionEngine>],
    policy: &BatchPolicy,
    density: f32,
) -> usize {
    let mut cap = adaptive_cap(screen, policy, density);
    for shard in shards {
        cap = cap.min(adaptive_cap(shard, policy, density));
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_core::SoftwareCostReport;

    fn software_estimate(batch_size: usize, ops: u64) -> BackendEstimate {
        BackendEstimate {
            backend: "software",
            batch_size,
            software: Some(SoftwareCostReport {
                inference_macs: ops,
                ..SoftwareCostReport::default()
            }),
            ..BackendEstimate::default()
        }
    }

    #[test]
    fn predicted_latency_prefers_modelled_milliseconds() {
        let policy = BatchPolicy::default();
        let accel = BackendEstimate {
            backend: "accel",
            batch_size: 4,
            latency_ms: Some(3.5),
            ..BackendEstimate::default()
        };
        assert_eq!(predicted_latency_ms(&accel, &policy), Some(3.5));

        // Software counts already price the whole fused batch; they become a
        // pseudo-latency without any per-input multiplication.
        let policy = BatchPolicy {
            software_ops_per_ms: 1000.0,
            ..BatchPolicy::default()
        };
        let software = software_estimate(2, 1000);
        assert_eq!(predicted_latency_ms(&software, &policy), Some(1.0));

        // A backend that models nothing imposes no latency estimate.
        let empty = BackendEstimate::default();
        assert_eq!(predicted_latency_ms(&empty, &policy), None);
    }

    #[test]
    fn default_policy_is_valid_and_bad_knobs_are_rejected() {
        BatchPolicy::default().validate().unwrap();
        assert!(BatchPolicy {
            max_batch: 0,
            ..BatchPolicy::default()
        }
        .validate()
        .is_err());
        assert!(BatchPolicy {
            target_batch_latency_ms: 0.0,
            ..BatchPolicy::default()
        }
        .validate()
        .is_err());
        assert!(BatchPolicy {
            software_ops_per_ms: f64::NAN,
            ..BatchPolicy::default()
        }
        .validate()
        .is_err());
    }
}
