//! # ptolemy-serve
//!
//! The serving runtime that turns one-or-more bound
//! [`ptolemy_core::DetectionEngine`]s into a production front-end.  PR 1's
//! engine is a session object — bind once, then `detect`/`detect_batch` — but
//! every caller still hand-rolls batching and drives a single engine
//! synchronously.  This crate adds the layer between "one input" and "one
//! pre-formed batch":
//!
//! * **[`Server`]** — a bounded submission queue drained by N worker threads
//!   (std threads + condvars, no external executor).  [`Server::submit`]
//!   returns a [`Ticket`] that resolves to a [`Served`] verdict; full queues
//!   apply backpressure.
//! * **Adaptive batch forming** ([`BatchPolicy`]) — workers accumulate queued
//!   requests and cut a batch when either the oldest request has waited out
//!   the latency budget or the backend's
//!   [`ptolemy_core::DetectionEngine::estimate_batch`] predicts the batch
//!   would exceed a target latency.  The cap adapts per backend: a
//!   [`ptolemy_core::SoftwareBackend`] engine is capped through its op counts,
//!   an accelerator-bound engine through the cycle model's modelled
//!   milliseconds.
//! * **Streamed fused batch execution** — each formed batch runs through
//!   [`ptolemy_core::DetectionEngine::detect_batch_with_paths`]: one batched
//!   NCHW `im2col`/matmul forward pass (tier 1, and again for the uncertain
//!   sliver on tier 2) whose activation paths are extracted **while the pass
//!   runs** ([`ptolemy_core::extract_paths_streaming_batch`]) — stacked
//!   boundaries are masked and released eagerly instead of materialising a
//!   full trace, so batch forming buys kernel fusion *and* O(retained
//!   boundaries) peak activation memory per worker, not just shared
//!   scheduling.
//! * **Two-tier routing** ([`ServerBuilder::escalate`]) — a cheap screening
//!   engine (e.g. an FwAb program) serves everything; inputs whose screening
//!   score falls in an uncertainty band are re-scored by an expensive engine
//!   (e.g. BwCu).  Per-tier counters land in [`ServeStats`].
//! * **Sharded tier 2** ([`ServerBuilder::escalate_sharded`]) — a many-class
//!   model's canary set splits across N escalation engines
//!   ([`ptolemy_core::ClassPathSet::shard`]); each in-band input is re-scored
//!   by the shard owning its screened class, so shard engines hold only their
//!   slice of canary memory while the union of shard verdicts stays
//!   **bit-for-bit identical** to the unsharded escalation engine.
//! * **Cross-batch tier-2 pipelining** (default on,
//!   [`ServerBuilder::pipeline_escalation`]) — each worker hands its
//!   escalation sliver to a bounded overlap thread and immediately screens the
//!   next formed batch, so tier-2 extraction of batch *k* overlaps tier-1 of
//!   batch *k+1* (both tiers stream through the `TraceSink` drivers, so the
//!   in-flight sliver holds only its retained boundaries).
//!   [`ServeStats::pipelined_batches`] / [`ServeStats::serial_batches`] report
//!   how often the handoff won.
//! * **Persistent path-prefix result cache** ([`CacheConfig`]) — an LRU cache
//!   keyed on [`ptolemy_core::ActivationPath::prefix_fingerprint`] of the
//!   screening path, so repeated/near-duplicate inputs skip re-scoring (most
//!   importantly the tier-2 re-extraction).  With
//!   [`CacheConfig::persist_path`] set the cache survives restarts: flushed on
//!   shutdown, reloaded on start, and keyed on the engine fingerprint so a
//!   file written by a different engine is ignored (with a counter) instead of
//!   replayed.  Hit/miss and persistence counters land in [`ServeStats`].
//! * **Overload survival** ([`AdmissionPolicy`], [`DegradePolicy`]) —
//!   [`Server::submit_with_deadline`] attaches a per-request deadline: the
//!   queue drains earliest-deadline-first (FIFO among deadline-free traffic,
//!   so plain `submit` ordering is untouched), admission control sheds
//!   submissions whose deadline the current backlog already dooms
//!   ([`ServeError::Shed`]), expired requests are dropped at batch formation
//!   instead of wasting inference, and under sustained queue pressure the
//!   server degrades to screen-tier-only verdicts (flagged via
//!   [`Served::degraded`], auto-recovering on drain).  All of it is counted
//!   in [`ServeStats`] and inert without deadlines and policies — the parity
//!   tests pin bit-for-bit identical serving under zero overload.
//!
//! With the cache disabled, served verdicts are **bit-for-bit identical** to
//! calling `detect` directly on whichever engine the router picked — the
//! serving layer adds scheduling, never arithmetic.  The workspace test-suite
//! pins that parity down.
//!
//! # Example
//!
//! ```
//! use ptolemy_core::{variants, DetectionEngine, Profiler};
//! use ptolemy_nn::{zoo, TrainConfig, Trainer};
//! use ptolemy_serve::Server;
//! use ptolemy_tensor::{Rng64, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng64::new(0);
//! let mut net = zoo::mlp_net(&[8], 2, &mut rng)?;
//! let samples: Vec<(Tensor, usize)> = (0..20)
//!     .map(|i| (Tensor::full(&[8], (i % 2) as f32), i % 2))
//!     .collect();
//! Trainer::new(TrainConfig::default()).fit(&mut net, &samples)?;
//! let program = variants::fw_ab(&net, 0.05)?;
//! let class_paths = Profiler::new(program.clone()).profile(&net, &samples)?;
//! let inputs: Vec<Tensor> = samples.iter().map(|(x, _)| x.clone()).collect();
//! let engine = DetectionEngine::builder(net, program, class_paths)
//!     .calibrate(&inputs[..8], &inputs[8..16])
//!     .build()?;
//!
//! // Start a server over the engine and push the inputs through it.
//! let server = Server::builder(engine).workers(2).start()?;
//! let tickets: Vec<_> = inputs
//!     .iter()
//!     .map(|x| server.submit(x.clone()))
//!     .collect::<Result<_, _>>()?;
//! for ticket in tickets {
//!     let served = ticket.wait()?;
//!     assert!((0.0..=1.0).contains(&served.detection.score));
//! }
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, inputs.len() as u64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod admission;
mod batch;
mod cache;
mod error;
mod server;
mod stats;
mod sync;

pub use admission::{AdmissionPolicy, DegradePolicy};
pub use batch::BatchPolicy;
pub use cache::{CacheConfig, LruCache};
pub use error::{Result, ServeError, ShedReason};
pub use server::{Served, Server, ServerBuilder, Ticket, Tier};
pub use stats::ServeStats;
