//! The multi-worker serving runtime: bounded submission queue, adaptive batch
//! former, two-tier router (optionally sharded across escalation engines, with
//! tier-2 work pipelined against the next batch's screening) and the
//! persistent path-prefix result cache.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::TrySendError;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ptolemy_core::{Detection, DetectionEngine};
use ptolemy_nn::QuantizedNetwork;
use ptolemy_obs::json::JsonValue;
use ptolemy_obs::{Clock, HistogramHandle, Registry, Stage, Timeline};
use ptolemy_tensor::Tensor;

use crate::admission::{AdmissionPolicy, DegradePolicy};
use crate::batch::{adaptive_cap_tiered, BatchPolicy};
use crate::cache::{self, CacheConfig, CacheLoad, CachedVerdict, LruCache};
use crate::error::{Result, ServeError, ShedReason};
use crate::stats::{ServeStats, StatsInner};
use crate::sync::{self, lock};

/// Which engine produced a served verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The tier-1 screening engine answered directly.
    Screen,
    /// The screening score fell in the uncertainty band and the tier-2
    /// escalation engine re-scored the input.
    Escalated,
}

/// A resolved serving request: the verdict plus its provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Served {
    /// The detection verdict.
    pub detection: Detection,
    /// The tier whose engine produced the verdict (for a cache hit: the tier
    /// that produced the cached verdict).
    pub tier: Tier,
    /// `true` if the verdict was resolved from the path-prefix cache instead of
    /// being re-scored.
    pub cache_hit: bool,
    /// `true` if this in-band request would have escalated to tier 2 but was
    /// answered by the screening verdict because the server was in degraded
    /// (screen-tier-only) overload mode ([`crate::DegradePolicy`]).  Always
    /// `false` without a degradation policy, for confident screen verdicts,
    /// for escalated verdicts, and for cache hits.
    pub degraded: bool,
}

#[derive(Debug)]
struct TicketSlot {
    result: Mutex<Option<Result<Served>>>,
    ready: Condvar,
}

/// A handle to one submitted request; resolves to a [`Served`] verdict.
///
/// Tickets resolve in whatever order batches complete, but each ticket always
/// resolves to the result of *its own* input — a submitter that waits on its
/// tickets in submission order observes its results in submission order.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<TicketSlot>,
}

impl Ticket {
    /// Blocks until the server resolves this request.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Engine`] if the detection engine failed on this
    /// input.
    pub fn wait(self) -> Result<Served> {
        let mut guard = lock(&self.slot.result);
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = sync::wait(&self.slot.ready, guard);
        }
    }

    /// `true` once the server has resolved this request ([`Ticket::wait`] will
    /// not block).
    pub fn is_ready(&self) -> bool {
        lock(&self.slot.result).is_some()
    }
}

struct Request {
    input: Tensor,
    slot: Arc<TicketSlot>,
    /// Enqueue time on the server's clock ([`Shared::now_ns`]).
    submitted_ns: u64,
    /// Absolute completion deadline on the server's clock
    /// ([`Server::submit_with_deadline`]); `None` for deadline-less
    /// submissions, which sort after every deadline-carrying request.
    deadline_ns: Option<u64>,
}

impl Request {
    /// The EDF ordering key: the absolute deadline, with deadline-less
    /// requests at `u64::MAX` (after everything that can miss).
    fn edf_key(&self) -> u64 {
        self.deadline_ns.unwrap_or(u64::MAX)
    }
}

struct QueueState {
    queue: VecDeque<Request>,
    /// Submitters currently blocked in [`Server::submit`] on a full queue;
    /// the batch former cuts a stalled batch immediately instead of waiting
    /// out the latency budget while the queue provably cannot grow.
    blocked_submitters: usize,
    shutdown: bool,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The single FNV-1a round shared by every cache key in this module — the
/// exact-input fast path and the path-prefix cache must hash identically for
/// the `input_keys → cache` mapping to stay meaningful.
fn fnv1a_u64(seed: u64, values: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash = seed;
    for value in values {
        hash ^= value;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// How many of the most recent per-batch [`Timeline`]s the server retains for
/// [`Server::metrics_json`].  A bounded ring: old batches age out, memory
/// stays O(1) however long the server runs.
const TIMELINE_RING: usize = 32;

/// The serving runtime's attachment to a [`ptolemy_obs::Registry`]: stage
/// histograms resolved once at startup (the hot path never touches the
/// registry's name maps) plus a bounded ring of recent per-batch timelines.
///
/// Counters that already exist in [`StatsInner`] are *not* duplicated here —
/// the snapshot renders them straight from the stats plane.
struct ServeObs {
    registry: Arc<Registry>,
    queue_wait_ns: HistogramHandle,
    batch_form_ns: HistogramHandle,
    cache_lookup_ns: HistogramHandle,
    screen_ns: HistogramHandle,
    /// One histogram per escalation shard, indexed like `Shared::escalate`.
    escalate_ns: Vec<HistogramHandle>,
    /// Occupancy of the cross-batch overlap thread: how long each pipelined
    /// tier-2 sliver kept it busy.
    overlap_ns: HistogramHandle,
    timelines: Mutex<VecDeque<Timeline>>,
}

impl ServeObs {
    /// `int8_screen` selects the screening histogram name (and matches the
    /// [`Stage::ScreenInt8`] timeline events the workers will record), so a
    /// registry snapshot unambiguously says which inference path the screen
    /// tier ran.
    fn attach(registry: Arc<Registry>, shards: usize, int8_screen: bool) -> ServeObs {
        let screen_hist = if int8_screen {
            "serve.screen_int8_ns"
        } else {
            "serve.screen_ns"
        };
        ServeObs {
            queue_wait_ns: registry.histogram("serve.queue_wait_ns"),
            batch_form_ns: registry.histogram("serve.batch_form_ns"),
            cache_lookup_ns: registry.histogram("serve.cache_lookup_ns"),
            screen_ns: registry.histogram(screen_hist),
            escalate_ns: (0..shards)
                .map(|shard| {
                    registry.histogram(&format!(
                        "serve.{}_ns",
                        Stage::Escalate(shard as u32).label()
                    ))
                })
                .collect(),
            overlap_ns: registry.histogram("serve.overlap_ns"),
            timelines: Mutex::new(VecDeque::with_capacity(TIMELINE_RING)),
            registry,
        }
    }

    /// Pushes a finished per-batch timeline into the bounded ring.
    fn retain_timeline(&self, timeline: Timeline) {
        let mut ring = lock(&self.timelines);
        if ring.len() == TIMELINE_RING {
            ring.pop_front();
        }
        ring.push_back(timeline);
    }
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals workers that requests arrived (or shutdown began).
    not_empty: Condvar,
    /// Signals blocked submitters that queue space freed up.
    not_full: Condvar,
    /// Wakes the metrics monitor thread early on shutdown.  Dedicated: the
    /// monitor must never steal an enqueue's `not_empty.notify_one` from a
    /// worker.
    monitor_wake: Condvar,
    screen: Arc<DetectionEngine>,
    /// The int8 quantized screening network
    /// ([`ServerBuilder::quantized_screen`]): when set, tier-1 screening runs
    /// the blocked-i8-GEMM quantized inference path instead of f32.
    /// Escalation always re-scores in f32 — the quantized tier is the cheap
    /// first look, never the final word on an uncertain input.
    quantized: Option<Arc<QuantizedNetwork>>,
    /// Tier-2 escalation engines: empty without tiered routing, one entry for
    /// a single escalation engine, several for sharded escalation.
    escalate: Vec<Arc<DetectionEngine>>,
    /// `owner_of[class]` is the index (into `escalate`) of the shard owning
    /// that class's canary path; empty iff `escalate` is empty.
    owner_of: Vec<usize>,
    /// Screening scores in `[band.0, band.1]` escalate to tier 2.
    band: (f32, f32),
    /// Hand tier-2 slivers to the per-worker overlap thread instead of running
    /// them inline.
    pipeline: bool,
    policy: BatchPolicy,
    queue_capacity: usize,
    /// Worker-thread count, cached for the admission wait estimate.
    workers: usize,
    /// Deadline admission control ([`ServerBuilder::admission`]); `None`
    /// admits everything.
    admission: Option<AdmissionPolicy>,
    /// Mixed-criticality degradation ([`ServerBuilder::degradation`]);
    /// `None` never degrades.
    degrade: Option<DegradePolicy>,
    /// Queue depth at/above which the server enters degraded mode
    /// (`usize::MAX` without a degradation policy).
    degrade_enter_at: usize,
    /// Queue depth at/below which a degraded server recovers.
    degrade_exit_at: usize,
    /// Whether the server is currently in degraded (screen-tier-only) mode.
    /// Transitions happen under the state lock (`update_degrade`), so the
    /// entered/exited counters pair exactly.
    degraded: AtomicBool,
    /// EMA of per-request service time (screen and escalation passes), the
    /// denominator of the admission wait estimate.  0 = unseeded: admission
    /// is inert until the first timed batch (and stays inert under manual
    /// clocks, keeping deterministic tests deterministic).
    service_ema_ns: AtomicU64,
    cache: Option<Mutex<LruCache<CachedVerdict>>>,
    /// Exact-duplicate fast path: maps an input fingerprint to the path-prefix
    /// key its screening extraction produced, so a byte-identical repeat skips
    /// even the screen extraction.  Near-duplicates (different bytes, same
    /// early-layer path) still match through the path-prefix key itself.
    input_keys: Option<Mutex<LruCache<u64>>>,
    /// Hash seed derived from [`Shared::cache_fingerprint`], so cache keys
    /// from engines with different build-time fingerprints never collide.
    cache_seed: u64,
    /// The fingerprint the result cache is keyed and persisted under: the
    /// screen engine's build-time fingerprint, suffixed with `+int8` when the
    /// quantized screen is on.  Int8 and f32 screening extract different
    /// paths from the same input, so their verdicts must never alias — in
    /// memory (the seed) or on disk (persisted caches only reload under the
    /// identical mode).
    cache_fingerprint: String,
    prefix_segments: usize,
    /// Where to persist the result cache on shutdown, if configured.
    persist_path: Option<PathBuf>,
    stats: Mutex<StatsInner>,
    /// The registry attachment ([`ServerBuilder::instrument`]); `None` leaves
    /// the serving path entirely uninstrumented.
    obs: Option<ServeObs>,
    /// Clock for queue-wait/latency bookkeeping when no registry is attached
    /// (with one attached, its clock is used so manual-clock tests stay
    /// deterministic end to end).
    fallback_clock: Clock,
    /// Latency budget in nanoseconds (cached off `policy.latency_budget`).
    latency_budget_ns: u64,
    /// Where the periodic snapshot thread writes metrics JSON, if configured.
    snapshot_path: Option<PathBuf>,
    /// Running mean activation-path density (f32 bits), fed back into the
    /// adaptive batch cap.
    density_ema_bits: AtomicU32,
    /// `(density the cap was computed at (bits), cap)` — recomputed when the
    /// observed density drifts.
    cap_cache: Mutex<Option<(f32, usize)>>,
    /// Test-only fault injection: makes the next screening pass panic once
    /// (the flag self-clears), exercising the poison-recovery path end-to-end.
    #[cfg(test)]
    fail_next_screen: std::sync::atomic::AtomicBool,
    /// Test-only fault injection: makes the next escalation pass panic once.
    #[cfg(test)]
    fail_next_escalation: std::sync::atomic::AtomicBool,
}

impl Shared {
    /// The server's clock reading: the attached registry's clock when
    /// instrumented (so a [`Clock::manual`] registry makes every serve timing
    /// deterministic), the private monotonic clock otherwise.
    fn now_ns(&self) -> u64 {
        match &self.obs {
            Some(obs) => obs.registry.clock().now_ns(),
            None => self.fallback_clock.now_ns(),
        }
    }

    /// The stage-timing attachment, `None` when absent **or gated off** — the
    /// disabled path costs one relaxed atomic load.
    fn stage_obs(&self) -> Option<&ServeObs> {
        self.obs.as_ref().filter(|obs| obs.registry.enabled())
    }

    fn density_ema(&self) -> f32 {
        f32::from_bits(self.density_ema_bits.load(Ordering::Relaxed))
    }

    fn observe_density(&self, density: f32) {
        let current = self.density_ema();
        // The unseeded sentinel is exactly +0.0 (the atomic starts at bit
        // pattern 0), so compare bit patterns rather than float values.
        let next = if current.to_bits() == 0 {
            density
        } else {
            0.9 * current + 0.1 * density
        };
        self.density_ema_bits
            .store(next.to_bits(), Ordering::Relaxed);
    }

    /// The adaptive batch cap for the current density regime.  Recomputed
    /// (outside the queue lock — backend estimates can be expensive) only when
    /// the observed density drifts more than 25 % from the one the cached cap
    /// was computed at.  Shard-aware: the cap is the minimum over the screen
    /// *and* every escalation shard, so a batch that escalates wholesale still
    /// fits the latency target (see [`adaptive_cap_tiered`]).
    fn current_cap(&self) -> usize {
        let density = self.density_ema();
        {
            let cached = lock(&self.cap_cache);
            if let Some((at, cap)) = *cached {
                if (density - at).abs() <= 0.25 * at.max(1e-3) {
                    return cap;
                }
            }
        }
        let cap = adaptive_cap_tiered(&self.screen, &self.escalate, &self.policy, density);
        *lock(&self.cap_cache) = Some((density, cap));
        cap
    }

    fn cache_key(&self, path: &ptolemy_core::ActivationPath) -> u64 {
        // One extra FNV round folds the engine-fingerprint seed into the
        // path-prefix fingerprint.
        fnv1a_u64(
            self.cache_seed,
            [path.prefix_fingerprint(self.prefix_segments)],
        )
    }

    fn input_key(&self, input: &Tensor) -> u64 {
        let dims = input.dims().iter().map(|d| *d as u64);
        let data = input.as_slice().iter().map(|v| u64::from(v.to_bits()));
        fnv1a_u64(self.cache_seed, dims.chain(data))
    }
}

/// The serving runtime: N worker threads draining a bounded submission queue
/// through one or two [`DetectionEngine`]s.
///
/// Built with [`Server::builder`].  Dropping the server (or calling
/// [`Server::shutdown`]) stops accepting work, drains every queued request and
/// joins the workers — no ticket is left unresolved.
///
/// # Example
///
/// See the crate-level docs ([`crate`]) and `examples/serving.rs`.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// The periodic metrics-snapshot thread ([`ServerBuilder::snapshot_to`]).
    monitor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .field("screen", &self.shared.screen.fingerprint())
            .field(
                "escalate",
                &self
                    .shared
                    .escalate
                    .iter()
                    .map(|shard| shard.fingerprint())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Server {
    /// Starts building a server around a tier-1 screening engine.
    pub fn builder(screen: impl Into<Arc<DetectionEngine>>) -> ServerBuilder {
        ServerBuilder {
            screen: screen.into(),
            quantized: None,
            escalate: Vec::new(),
            band: (0.0, 0.0),
            workers: 2,
            queue_capacity: 256,
            policy: BatchPolicy::default(),
            admission: None,
            degrade: None,
            cache: None,
            pipeline: true,
            tiering_requested: false,
            registry: None,
            snapshot: None,
        }
    }

    /// Submits one input, blocking while the submission queue is full
    /// (backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] once shutdown has begun.
    pub fn submit(&self, input: Tensor) -> Result<Ticket> {
        self.submit_opt(input, None)
    }

    /// Submits one input with a completion deadline, blocking while the
    /// submission queue is full.  The deadline is measured from this call, so
    /// time spent blocked on backpressure consumes budget.
    ///
    /// Deadline-carrying requests are queued in **earliest-deadline-first**
    /// order (ahead of deadline-less requests, FIFO among equal deadlines);
    /// a request whose deadline expires before a worker reaches it is
    /// dropped at batch formation and its ticket resolves as
    /// [`ServeError::Shed`].  Completions past the deadline still resolve
    /// normally but count in [`ServeStats::deadline_misses`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] once shutdown has begun, and
    /// [`ServeError::Shed`] when admission control
    /// ([`ServerBuilder::admission`]) predicts the deadline cannot be met at
    /// the current queue depth.
    pub fn submit_with_deadline(&self, input: Tensor, deadline: Duration) -> Result<Ticket> {
        self.submit_opt(input, Some(deadline))
    }

    /// Submits one input without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`] if the queue is at capacity and
    /// [`ServeError::ShuttingDown`] once shutdown has begun.
    pub fn try_submit(&self, input: Tensor) -> Result<Ticket> {
        self.try_submit_opt(input, None)
    }

    /// Submits one input with a completion deadline, without blocking — the
    /// non-blocking sibling of [`Server::submit_with_deadline`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`] if the queue is at capacity,
    /// [`ServeError::ShuttingDown`] once shutdown has begun, and
    /// [`ServeError::Shed`] when admission control predicts a miss.
    pub fn try_submit_with_deadline(&self, input: Tensor, deadline: Duration) -> Result<Ticket> {
        self.try_submit_opt(input, Some(deadline))
    }

    fn submit_opt(&self, input: Tensor, deadline: Option<Duration>) -> Result<Ticket> {
        let deadline_ns = self.absolute_deadline(deadline);
        let mut state = lock(&self.shared.state);
        loop {
            if state.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if state.queue.len() < self.shared.queue_capacity {
                break;
            }
            state.blocked_submitters += 1;
            // Wake a worker waiting out its latency budget: with a submitter
            // blocked, the current batch cannot grow any further.
            self.shared.not_empty.notify_one();
            let mut woken = sync::wait(&self.shared.not_full, state);
            woken.blocked_submitters -= 1;
            state = woken;
        }
        self.enqueue(&mut state, input, deadline_ns)
    }

    fn try_submit_opt(&self, input: Tensor, deadline: Option<Duration>) -> Result<Ticket> {
        let deadline_ns = self.absolute_deadline(deadline);
        let mut state = lock(&self.shared.state);
        if state.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.queue_capacity {
            return Err(ServeError::QueueFull);
        }
        self.enqueue(&mut state, input, deadline_ns)
    }

    /// Converts a relative deadline into an absolute reading on the server's
    /// clock, taken at submission-call time.
    fn absolute_deadline(&self, deadline: Option<Duration>) -> Option<u64> {
        deadline.map(|d| {
            let budget_ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
            self.shared.now_ns().saturating_add(budget_ns)
        })
    }

    fn enqueue(
        &self,
        state: &mut QueueState,
        input: Tensor,
        deadline_ns: Option<u64>,
    ) -> Result<Ticket> {
        let now_ns = self.shared.now_ns();
        // Admission control: estimate this request's completion time from the
        // queue depth ahead of it and the per-request service EMA; shed it
        // now (no ticket, no queue slot) if the deadline is predicted
        // unmeetable.  Deadline-less submissions are never shed.
        if let (Some(policy), Some(deadline)) = (&self.shared.admission, deadline_ns) {
            let ema_ns = self.shared.service_ema_ns.load(Ordering::Relaxed);
            if ema_ns > 0 {
                let depth = state.queue.len() as u64 + 1;
                let rounds = depth.div_ceil(self.shared.workers.max(1) as u64);
                let estimate_ns = (ema_ns.saturating_mul(rounds) as f64 * policy.headroom) as u64;
                if now_ns.saturating_add(estimate_ns) > deadline {
                    lock(&self.shared.stats).shed_admission += 1;
                    return Err(ServeError::Shed(ShedReason::Admission));
                }
            }
        }
        let slot = Arc::new(TicketSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        let request = Request {
            input,
            slot: slot.clone(),
            submitted_ns: now_ns,
            deadline_ns,
        };
        // EDF insertion: before every queued request with a strictly later
        // deadline.  `partition_point` keeps FIFO order among equal keys, so
        // deadline-less traffic (key u64::MAX throughout) preserves the exact
        // historical FIFO behavior.
        let key = request.edf_key();
        let at = state
            .queue
            .partition_point(|queued| queued.edf_key() <= key);
        state.queue.insert(at, request);
        lock(&self.shared.stats).submitted += 1;
        update_degrade(&self.shared, state.queue.len());
        self.shared.not_empty.notify_one();
        Ok(Ticket { slot })
    }

    /// Number of requests currently queued (not yet picked up by a worker).
    pub fn pending(&self) -> usize {
        lock(&self.shared.state).queue.len()
    }

    /// A point-in-time snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        // Copy the counters out under the lock; sort/percentile work happens
        // outside it so a polling monitor never stalls the workers.
        let copied = lock(&self.shared.stats).clone();
        copied.snapshot()
    }

    /// The full metrics plane as one JSON value: the [`ServeStats`] counters,
    /// the all-time latency histogram, the attached registry's snapshot (when
    /// [`ServerBuilder::instrument`] was used) and the most recent per-batch
    /// stage timelines.
    ///
    /// Latencies are exported in integer nanoseconds/microseconds — the
    /// workspace JSON dialect is integer-only, and nanoseconds are exact.
    pub fn metrics_json(&self) -> JsonValue {
        metrics_json_of(&self.shared)
    }

    /// The tier-1 screening engine.
    pub fn screen_engine(&self) -> &DetectionEngine {
        &self.shared.screen
    }

    /// The single tier-2 escalation engine, if exactly one is configured
    /// (`None` without tiered routing *and* under sharded escalation — use
    /// [`Server::escalation_shards`] for the general view).
    pub fn escalation_engine(&self) -> Option<&DetectionEngine> {
        match self.shared.escalate.as_slice() {
            [only] => Some(only),
            _ => None,
        }
    }

    /// The tier-2 escalation engines, in shard order (empty without tiered
    /// routing, one entry for a single [`ServerBuilder::escalate`] engine).
    pub fn escalation_shards(&self) -> &[Arc<DetectionEngine>] {
        &self.shared.escalate
    }

    /// Stops accepting submissions, drains every queued request, joins the
    /// workers, flushes the persistent cache (if configured) and returns the
    /// final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        if self.workers.is_empty() {
            return; // already shut down (shutdown() ran; this is the Drop)
        }
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        self.shared.monitor_wake.notify_all();
        for worker in self.workers.drain(..) {
            // A panicked worker already resolved nothing further; the
            // remaining workers drain the queue, so don't propagate here.
            let _ = worker.join();
        }
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
        // Every worker is joined, so this final snapshot sees the complete
        // run — a post-mortem reader gets the closing state, not whatever the
        // last periodic tick happened to capture.
        if let Some(path) = &self.shared.snapshot_path {
            write_snapshot(&self.shared, path);
        }
        // With every worker joined the cache is quiescent: flush it to disk.
        // A failed write leaves the counter at 0 rather than failing shutdown.
        if let (Some(cache), Some(path)) = (&self.shared.cache, &self.shared.persist_path) {
            let written = cache::persist(
                path,
                &self.shared.cache_fingerprint,
                self.shared.prefix_segments,
                &lock(cache),
            );
            if let Ok(written) = written {
                lock(&self.shared.stats).cache_entries_persisted = written as u64;
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Renders the metrics snapshot for [`Server::metrics_json`] and the periodic
/// snapshot thread.  Integer-only (the workspace JSON dialect): exact
/// nanoseconds where the source is exact, `mean_batch` scaled by 1000.
fn metrics_json_of(shared: &Shared) -> JsonValue {
    let (stats, latency) = {
        let inner = lock(&shared.stats);
        (inner.clone(), inner.latency_histogram())
    };
    let snapshot = stats.snapshot();
    let shard_escalations = snapshot
        .shard_escalations
        .iter()
        .map(|&n| JsonValue::UInt(n))
        .collect();
    let counters = vec![
        ("submitted".into(), JsonValue::UInt(snapshot.submitted)),
        ("completed".into(), JsonValue::UInt(snapshot.completed)),
        ("failed".into(), JsonValue::UInt(snapshot.failed)),
        (
            "worker_panics".into(),
            JsonValue::UInt(snapshot.worker_panics),
        ),
        (
            "screen_served".into(),
            JsonValue::UInt(snapshot.screen_served),
        ),
        (
            "int8_screens".into(),
            JsonValue::UInt(snapshot.int8_screens),
        ),
        ("escalated".into(), JsonValue::UInt(snapshot.escalated)),
        (
            "shard_escalations".into(),
            JsonValue::Array(shard_escalations),
        ),
        (
            "pipelined_batches".into(),
            JsonValue::UInt(snapshot.pipelined_batches),
        ),
        (
            "serial_batches".into(),
            JsonValue::UInt(snapshot.serial_batches),
        ),
        ("cache_hits".into(), JsonValue::UInt(snapshot.cache_hits)),
        (
            "cache_misses".into(),
            JsonValue::UInt(snapshot.cache_misses),
        ),
        (
            "shed_admission".into(),
            JsonValue::UInt(snapshot.shed_admission),
        ),
        (
            "shed_expired".into(),
            JsonValue::UInt(snapshot.shed_expired),
        ),
        (
            "deadline_misses".into(),
            JsonValue::UInt(snapshot.deadline_misses),
        ),
        (
            "degraded_served".into(),
            JsonValue::UInt(snapshot.degraded_served),
        ),
        (
            "degrade_entered".into(),
            JsonValue::UInt(snapshot.degrade_entered),
        ),
        (
            "degrade_exited".into(),
            JsonValue::UInt(snapshot.degrade_exited),
        ),
        ("batches".into(), JsonValue::UInt(snapshot.batches)),
        (
            "max_batch".into(),
            JsonValue::UInt(snapshot.max_batch as u64),
        ),
        (
            "mean_batch_milli".into(),
            JsonValue::UInt((snapshot.mean_batch * 1000.0).round() as u64),
        ),
        (
            "p50_latency_us".into(),
            JsonValue::UInt((snapshot.p50_latency_ms * 1000.0).round() as u64),
        ),
        (
            "p90_latency_us".into(),
            JsonValue::UInt((snapshot.p90_latency_ms * 1000.0).round() as u64),
        ),
        (
            "p99_latency_us".into(),
            JsonValue::UInt((snapshot.p99_latency_ms * 1000.0).round() as u64),
        ),
    ];
    let mut fields = vec![
        ("stats".into(), JsonValue::Object(counters)),
        ("latency_ns".into(), latency.to_json()),
    ];
    if let Some(obs) = &shared.obs {
        fields.push(("registry".into(), obs.registry.snapshot()));
        let timelines = lock(&obs.timelines).iter().map(Timeline::to_json).collect();
        fields.push(("timelines".into(), JsonValue::Array(timelines)));
    }
    JsonValue::Object(fields)
}

/// Writes one metrics snapshot to `path` (atomically: temp file + rename, so
/// a reader never sees a torn snapshot).  Failures are swallowed — the
/// metrics plane must never take serving down.
fn write_snapshot(shared: &Shared, path: &std::path::Path) {
    let text = metrics_json_of(shared).to_json();
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, text).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// One worker: form a batch adaptively, screen it **fused**, hand the tier-2
/// sliver to the worker's bounded overlap thread (so escalation extraction of
/// batch *k* runs concurrently with screening of batch *k+1*), repeat until
/// shutdown drains the queue.
fn worker_loop(shared: &Shared) {
    // The overlap thread mirrors core's streaming-extraction overlap worker: a
    // bounded rendezvous (sync_channel(1)) so at most one tier-2 sliver waits
    // while one executes — tier-2 work can lag the screen by a batch, never
    // pile up unboundedly.  When the channel is full the sliver runs inline
    // (counted as a serial batch), which keeps the worker making progress even
    // when tier 2 is the bottleneck.
    let pipelined = shared.pipeline && !shared.escalate.is_empty();
    std::thread::scope(|scope| {
        let escalator = if pipelined {
            let (tx, rx) = std::sync::mpsc::sync_channel::<EscalationJob>(1);
            let handle = scope.spawn(move || {
                while let Ok(job) = rx.recv() {
                    run_escalations_caught(shared, job);
                }
            });
            Some((tx, handle))
        } else {
            None
        };
        loop {
            // A custom backend whose estimate_batch panics must not kill the
            // worker (queued tickets would never resolve); it just loses the
            // adaptive constraint.
            let cap =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| shared.current_cap()))
                    .unwrap_or(shared.policy.max_batch);
            let Some(formed) = next_batch(shared, cap) else {
                break;
            };
            let FormedBatch {
                requests: batch,
                form_start_ns,
                cut_ns,
                degraded,
            } = formed;
            let batch_index;
            {
                let mut stats = lock(&shared.stats);
                stats.batches += 1;
                batch_index = stats.batches;
                stats.batched_requests += batch.len() as u64;
                stats.max_batch = stats.max_batch.max(batch.len());
            }
            // Per-batch stage timeline + queue-wait/batch-form histograms,
            // only when a registry is attached and enabled.
            let timeline = shared.stage_obs().map(|obs| {
                obs.batch_form_ns
                    .record(cut_ns.saturating_sub(form_start_ns));
                let earliest = batch
                    .iter()
                    .map(|r| r.submitted_ns)
                    .min()
                    .unwrap_or(form_start_ns);
                for request in &batch {
                    obs.queue_wait_ns
                        .record(cut_ns.saturating_sub(request.submitted_ns));
                }
                let origin = earliest.min(form_start_ns);
                let mut timeline = Timeline::new(&format!("batch-{batch_index}"), origin);
                timeline.record(Stage::QueueWait, earliest, cut_ns);
                timeline.record(Stage::BatchForm, form_start_ns, cut_ns);
                timeline
            });
            let slots: Vec<Arc<TicketSlot>> = batch.iter().map(|r| r.slot.clone()).collect();
            let screened = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                screen_batch(shared, batch, timeline, degraded)
            }));
            match screened {
                Ok(Some(mut job)) => match &escalator {
                    Some((tx, _)) => {
                        job.overlapped = true;
                        match tx.try_send(job) {
                            Ok(()) => lock(&shared.stats).pipelined_batches += 1,
                            Err(TrySendError::Full(mut job))
                            | Err(TrySendError::Disconnected(mut job)) => {
                                job.overlapped = false;
                                lock(&shared.stats).serial_batches += 1;
                                run_escalations_caught(shared, job);
                            }
                        }
                    }
                    None => {
                        lock(&shared.stats).serial_batches += 1;
                        run_escalations_caught(shared, job);
                    }
                },
                Ok(None) => {}
                Err(_) => {
                    // The engine panicked mid-batch (screen_batch resolves
                    // tickets on ordinary errors, so only a panic lands here).
                    // Resolve every still-unresolved ticket of the batch
                    // instead of stranding its waiter, and keep the worker
                    // alive for the rest of the queue.
                    lock(&shared.stats).worker_panics += 1;
                    cancel_unresolved(shared, &slots);
                }
            }
        }
        // Drop the sender so the overlap thread drains its last sliver and
        // exits before this worker reports itself done.
        if let Some((tx, handle)) = escalator {
            drop(tx);
            let _ = handle.join();
        }
    });
}

/// Flips the degradation flag against the watermark thresholds for `depth`
/// queued requests, counting transitions.  Callers hold the state lock, which
/// serialises transitions — the entered/exited counters pair exactly.
fn update_degrade(shared: &Shared, depth: usize) {
    if shared.degrade.is_none() {
        return;
    }
    if depth >= shared.degrade_enter_at {
        if !shared.degraded.swap(true, Ordering::Relaxed) {
            lock(&shared.stats).degrade_entered += 1;
        }
    } else if depth <= shared.degrade_exit_at && shared.degraded.swap(false, Ordering::Relaxed) {
        lock(&shared.stats).degrade_exited += 1;
    }
}

/// Feeds the per-request service-time EMA behind the admission estimate with
/// one timed pass over `requests` inputs.  Skipped without admission control,
/// and a zero per-request cost (manual clocks) leaves the EMA unseeded — so
/// admission stays inert in deterministic-clock tests.
fn observe_service(shared: &Shared, elapsed_ns: u64, requests: usize) {
    if shared.admission.is_none() || requests == 0 {
        return;
    }
    let per_request_ns = elapsed_ns / requests as u64;
    if per_request_ns == 0 {
        return;
    }
    let current = shared.service_ema_ns.load(Ordering::Relaxed);
    let next = if current == 0 {
        per_request_ns
    } else {
        current.saturating_mul(3).saturating_add(per_request_ns) / 4
    };
    shared.service_ema_ns.store(next, Ordering::Relaxed);
}

/// Resolves every still-unresolved ticket in `slots` as canceled.
fn cancel_unresolved(shared: &Shared, slots: &[Arc<TicketSlot>]) {
    for slot in slots {
        if resolve(
            slot,
            Err(ServeError::Canceled(
                "a worker panicked while serving this request".into(),
            )),
        ) {
            lock(&shared.stats).failed += 1;
        }
    }
}

/// Writes `result` into the ticket slot unless it was already resolved, waking
/// the waiter.  Returns whether this call resolved the ticket.
fn resolve(slot: &TicketSlot, result: Result<Served>) -> bool {
    let mut guard = lock(&slot.result);
    if guard.is_some() {
        return false;
    }
    *guard = Some(result);
    drop(guard);
    slot.ready.notify_all();
    true
}

/// A batch cut by [`next_batch`]: the requests plus the clock readings the
/// instrumentation needs (when it is on) to account batch-forming time.
struct FormedBatch {
    requests: Vec<Request>,
    /// When the worker first saw a non-empty queue for this batch.
    form_start_ns: u64,
    /// When the batch was cut.
    cut_ns: u64,
    /// Whether degraded (screen-tier-only) mode was in effect at the cut —
    /// the whole batch routes in the mode it was cut under.
    degraded: bool,
}

/// Blocks until a batch can be cut (queue reached the adaptive cap, the oldest
/// request waited out the latency budget, or shutdown flushes what's left).
/// Returns `None` when the queue is drained and the server is shutting down.
fn next_batch(shared: &Shared, cap: usize) -> Option<FormedBatch> {
    let mut state = lock(&shared.state);
    // Batch-forming starts when the worker first observes a request, not when
    // it starts idling on an empty queue.
    let mut form_start_ns: Option<u64> = None;
    loop {
        if state.queue.is_empty() {
            if state.shutdown {
                return None;
            }
            form_start_ns = None;
            state = sync::wait(&shared.not_empty, state);
            continue;
        }
        let oldest_ns = match state.queue.front() {
            Some(request) => request.submitted_ns,
            None => continue, // re-check emptiness/shutdown at the top
        };
        let now_ns = shared.now_ns();
        let form_start = *form_start_ns.get_or_insert(now_ns);
        let waited_ns = now_ns.saturating_sub(oldest_ns);
        // Cut when the batch is as large as it can get: the adaptive cap is
        // reached, or the queue is at capacity with a submitter blocked on
        // backpressure (it cannot grow, so waiting out the budget would only
        // stall the pipeline).
        let stalled = state.blocked_submitters > 0 && state.queue.len() >= shared.queue_capacity;
        if state.queue.len() >= cap
            || stalled
            || waited_ns >= shared.latency_budget_ns
            || state.shutdown
        {
            // The pre-drain depth decides the degradation transition (it is
            // the pressure that triggered this cut); the batch then routes
            // in whatever mode is in effect at the cut.
            update_degrade(shared, state.queue.len());
            let degraded = shared.degrade.is_some() && shared.degraded.load(Ordering::Relaxed);
            let n = state.queue.len().min(cap);
            let requests: Vec<Request> = state.queue.drain(..n).collect();
            shared.not_full.notify_all();
            return Some(FormedBatch {
                requests,
                form_start_ns: form_start,
                cut_ns: shared.now_ns(),
                degraded,
            });
        }
        let remaining = Duration::from_nanos(shared.latency_budget_ns - waited_ns);
        let (guard, _timeout) = sync::wait_timeout(&shared.not_empty, state, remaining);
        state = guard;
    }
}

/// A request whose input tensor has been moved into the fused-batch buffer:
/// only what resolution still needs.
struct InFlight {
    slot: Arc<TicketSlot>,
    submitted_ns: u64,
    /// Absolute deadline carried from the [`Request`]; drives the expiry
    /// drop at batch formation and the deadline-miss accounting at finish.
    deadline_ns: Option<u64>,
    /// Exact-input cache key, computed in phase 1 while the input was at hand.
    input_key: Option<u64>,
}

/// Resolves one request: updates the completion counters, queue-to-result
/// latency and deadline-miss accounting, then wakes the waiter.
fn finish(shared: &Shared, request: &InFlight, outcome: Result<Served>) {
    let now_ns = shared.now_ns();
    let latency_ns = now_ns.saturating_sub(request.submitted_ns);
    {
        let mut stats = lock(&shared.stats);
        match &outcome {
            Ok(_) => {
                stats.completed += 1;
                if request
                    .deadline_ns
                    .is_some_and(|deadline| now_ns > deadline)
                {
                    stats.deadline_misses += 1;
                }
            }
            Err(_) => stats.failed += 1,
        }
        stats.record_latency(latency_ns);
    }
    resolve(&request.slot, outcome);
}

/// The tier-2 sliver of one screened batch: for each escalation shard, the
/// requests routed to it (by the shard owning each request's screened class)
/// and their inputs, ready for one fused pass per shard.
struct EscalationJob {
    groups: Vec<EscalationGroup>,
    /// The batch's stage timeline, carried through so the escalation passes
    /// (wherever they run) append their events before it is retained.
    timeline: Option<Timeline>,
    /// `true` when the job was handed to the overlap thread — its execution
    /// time then also counts as overlap-thread occupancy.
    overlapped: bool,
}

struct EscalationGroup {
    shard: usize,
    requests: Vec<(InFlight, Option<u64>)>,
    inputs: Vec<Tensor>,
}

impl EscalationJob {
    fn slots(&self) -> Vec<Arc<TicketSlot>> {
        self.groups
            .iter()
            .flat_map(|group| group.requests.iter().map(|(r, _)| r.slot.clone()))
            .collect()
    }
}

/// Runs an escalation job, resolving every ticket even if an engine panics
/// mid-sliver.
fn run_escalations_caught(shared: &Shared, job: EscalationJob) {
    let slots = job.slots();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_escalations(shared, job)
    }));
    if outcome.is_err() {
        lock(&shared.stats).worker_panics += 1;
        cancel_unresolved(shared, &slots);
    }
}

/// One fused tier-2 pass per shard group: verdicts, cache fills, ticket
/// resolution.  Grouping per shard changes only which fused batch an input
/// rides in, and the fused kernels preserve per-input arithmetic — so the
/// union of shard verdicts is bit-for-bit what the unsharded escalation
/// engine returns.
/// Panics iff the given injection flag was armed, consuming it.  Test-only:
/// the drain tests arm these flags to prove a panicking worker degrades
/// (tickets cancelled, `worker_panics` bumped) instead of wedging the server.
#[cfg(test)]
fn maybe_inject_panic(flag: &std::sync::atomic::AtomicBool, what: &str) {
    if flag.swap(false, Ordering::SeqCst) {
        panic!("injected {what} panic");
    }
}

fn run_escalations(shared: &Shared, job: EscalationJob) {
    #[cfg(test)]
    maybe_inject_panic(&shared.fail_next_escalation, "escalation");
    let EscalationJob {
        groups,
        mut timeline,
        overlapped,
    } = job;
    let obs = shared.stage_obs();
    let overlap_start_ns = obs.map(|_| shared.now_ns());
    for group in groups {
        // Timed unconditionally: the admission EMA charges escalated requests
        // their tier-2 cost whether or not a registry is attached.
        let start_ns = shared.now_ns();
        let group_len = group.requests.len();
        let engine = &shared.escalate[group.shard];
        let shard = group.shard;
        let verdicts = engine.detect_batch_with_paths(&group.inputs);
        for ((request, path_key), verdict) in group.requests.into_iter().zip(verdicts) {
            match verdict {
                Ok((detection, _)) => {
                    {
                        let mut stats = lock(&shared.stats);
                        stats.escalated += 1;
                        stats.shard_escalations[group.shard] += 1;
                    }
                    if let (Some(cache), Some(key)) = (&shared.cache, path_key) {
                        lock(cache).insert(
                            key,
                            CachedVerdict {
                                detection,
                                tier: Tier::Escalated,
                            },
                        );
                    }
                    finish(
                        shared,
                        &request,
                        Ok(Served {
                            detection,
                            tier: Tier::Escalated,
                            cache_hit: false,
                            degraded: false,
                        }),
                    );
                }
                Err(e) => finish(shared, &request, Err(e.into())),
            }
        }
        let end_ns = shared.now_ns();
        observe_service(shared, end_ns.saturating_sub(start_ns), group_len);
        if let Some(obs) = obs {
            obs.escalate_ns[shard].record(end_ns.saturating_sub(start_ns));
            if let Some(timeline) = &mut timeline {
                timeline.record(Stage::Escalate(shard as u32), start_ns, end_ns);
            }
        }
    }
    if let Some(obs) = obs {
        if let Some(start_ns) = overlap_start_ns.filter(|_| overlapped) {
            let end_ns = shared.now_ns();
            obs.overlap_ns.record(end_ns.saturating_sub(start_ns));
            if let Some(timeline) = &mut timeline {
                timeline.record(Stage::Overlap, start_ns, end_ns);
            }
        }
        if let Some(timeline) = timeline {
            obs.retain_timeline(timeline);
        }
    }
}

/// Screens one formed batch through the **fused** engine path and returns the
/// tier-2 sliver (if any) for the caller to run inline or hand to the overlap
/// thread:
///
/// 1. exact-duplicate fast path per request (byte-identical repeats resolve
///    straight from the cache, skipping even the screening extraction);
/// 2. one streamed fused tier-1 pass over the whole remainder
///    ([`DetectionEngine::detect_batch_with_paths`] — a single batched
///    im2col/matmul forward pass whose paths are extracted in-flight, stacked
///    activations released eagerly instead of materialising a trace);
/// 3. per-request path-prefix cache lookup and uncertainty-band routing: each
///    in-band request joins the group of the escalation shard that owns its
///    screened class.
///
/// With the cache disabled the results are bit-for-bit what direct engine
/// calls produce: `screen.detect(input)` when the score is outside the
/// uncertainty band, `escalate.detect(input)` on the owning shard when inside
/// — the fused kernels preserve the per-input reduction order, so batching
/// (and sharding, and pipelining) changes scheduling, never arithmetic.  With
/// the int8 quantized screen on, the tier-1 reference is
/// `screen.detect_quantized(input)` instead (exactly deterministic, but a
/// *statistical* stand-in for f32 — see
/// [`ServerBuilder::quantized_screen`]); escalation still re-scores in f32.
fn screen_batch(
    shared: &Shared,
    batch: Vec<Request>,
    mut timeline: Option<Timeline>,
    degraded: bool,
) -> Option<EscalationJob> {
    #[cfg(test)]
    maybe_inject_panic(&shared.fail_next_screen, "screening");
    let obs = shared.stage_obs();
    let cache_hit = |cached: CachedVerdict| {
        lock(&shared.stats).cache_hits += 1;
        Served {
            detection: cached.detection,
            tier: cached.tier,
            cache_hit: true,
            degraded: false,
        }
    };

    // Phase 1: deadline-expiry drop, then the exact-duplicate fast path.
    // Inputs that miss are *moved* (not cloned) into the fused-batch buffer.
    let phase1_start_ns = shared.now_ns();
    let mut expired = 0u64;
    let lookup_start_ns = obs
        .filter(|_| shared.cache.is_some())
        .map(|_| phase1_start_ns);
    let mut pending: Vec<InFlight> = Vec::with_capacity(batch.len());
    let mut inputs: Vec<Tensor> = Vec::with_capacity(batch.len());
    for request in batch {
        let Request {
            input,
            slot,
            submitted_ns,
            deadline_ns,
        } = request;
        let input_key = shared.cache.is_some().then(|| shared.input_key(&input));
        let in_flight = InFlight {
            slot,
            submitted_ns,
            deadline_ns,
            input_key,
        };
        // A request whose deadline already passed gets no inference: resolve
        // it shed (the answer could help nobody) and spend the cycles on
        // requests that can still make their deadlines.
        if deadline_ns.is_some_and(|deadline| phase1_start_ns > deadline) {
            expired += 1;
            lock(&shared.stats).shed_expired += 1;
            finish(
                shared,
                &in_flight,
                Err(ServeError::Shed(ShedReason::DeadlineExpired)),
            );
            continue;
        }
        if let (Some(cache), Some(input_keys), Some(key)) =
            (&shared.cache, &shared.input_keys, input_key)
        {
            if let Some(path_key) = lock(input_keys).get(key).copied() {
                if let Some(cached) = lock(cache).get(path_key).copied() {
                    finish(shared, &in_flight, Ok(cache_hit(cached)));
                    continue;
                }
            }
        }
        pending.push(in_flight);
        inputs.push(input);
    }
    if expired > 0 {
        if let Some(timeline) = &mut timeline {
            timeline.record(Stage::Shed, phase1_start_ns, shared.now_ns());
        }
    }
    if let (Some(obs), Some(start_ns)) = (obs, lookup_start_ns) {
        let end_ns = shared.now_ns();
        obs.cache_lookup_ns.record(end_ns.saturating_sub(start_ns));
        if let Some(timeline) = &mut timeline {
            timeline.record(Stage::CacheLookup, start_ns, end_ns);
        }
    }
    if pending.is_empty() {
        if let (Some(obs), Some(timeline)) = (obs, timeline) {
            obs.retain_timeline(timeline);
        }
        return None;
    }

    // Phase 2: one fused screening trace over everything the fast path missed
    // — the int8 quantized pass when the builder enabled it, f32 otherwise.
    // Timed unconditionally: the admission EMA needs the per-request cost
    // whether or not a registry is attached.
    let screen_start_ns = shared.now_ns();
    let screened = match &shared.quantized {
        Some(qnet) => {
            lock(&shared.stats).int8_screens += inputs.len() as u64;
            shared.screen.detect_batch_quantized_with(qnet, &inputs)
        }
        None => shared.screen.detect_batch_with_paths(&inputs),
    };
    let screen_end_ns = shared.now_ns();
    observe_service(
        shared,
        screen_end_ns.saturating_sub(screen_start_ns),
        inputs.len(),
    );
    if let Some(obs) = obs {
        obs.screen_ns
            .record(screen_end_ns.saturating_sub(screen_start_ns));
        if let Some(timeline) = &mut timeline {
            let stage = if shared.quantized.is_some() {
                Stage::ScreenInt8
            } else {
                Stage::Screen
            };
            timeline.record(stage, screen_start_ns, screen_end_ns);
        }
    }

    // Phase 3: density feedback, cache lookup on the path prefix, band routing
    // to the escalation shard owning each screened class.
    let mut degraded_served = 0u64;
    let mut groups: Vec<EscalationGroup> = (0..shared.escalate.len())
        .map(|shard| EscalationGroup {
            shard,
            requests: Vec::new(),
            inputs: Vec::new(),
        })
        .collect();
    for ((request, input), result) in pending.into_iter().zip(inputs).zip(screened) {
        let (detection, path) = match result {
            Ok(traced) => traced,
            Err(e) => {
                finish(shared, &request, Err(e.into()));
                continue;
            }
        };
        shared.observe_density(path.density());
        let path_key = shared.cache.as_ref().map(|_| shared.cache_key(&path));
        if let (Some(cache), Some(key)) = (&shared.cache, path_key) {
            if let (Some(input_keys), Some(input_key)) = (&shared.input_keys, request.input_key) {
                lock(input_keys).insert(input_key, key);
            }
            if let Some(cached) = lock(cache).get(key).copied() {
                finish(shared, &request, Ok(cache_hit(cached)));
                continue;
            }
            lock(&shared.stats).cache_misses += 1;
        }
        let in_band = detection.score >= shared.band.0 && detection.score <= shared.band.1;
        if !shared.escalate.is_empty() && in_band {
            if degraded {
                // Mixed-criticality degradation: the batch was cut while the
                // queue sat above the high watermark, so in-band requests take
                // the tier-1 verdict instead of escalating.  The verdict is
                // flagged and NOT cached — a degraded answer must never
                // masquerade as a full-pipeline verdict on a later hit.
                {
                    let mut stats = lock(&shared.stats);
                    stats.screen_served += 1;
                    stats.degraded_served += 1;
                }
                degraded_served += 1;
                finish(
                    shared,
                    &request,
                    Ok(Served {
                        detection,
                        tier: Tier::Screen,
                        cache_hit: false,
                        degraded: true,
                    }),
                );
                continue;
            }
            // The screened class decides the owning shard; validation pinned
            // tiers to one shared network instance, so the shard's own forward
            // pass predicts the same class and never hits a placeholder
            // canary.  (An out-of-range class cannot happen — owner_of covers
            // every class the network predicts — but a defensive fallback to
            // shard 0 turns the impossible case into that shard's loud
            // non-ownership error rather than a panic.)
            let shard = shared
                .owner_of
                .get(detection.predicted_class)
                .copied()
                .unwrap_or(0);
            groups[shard].requests.push((request, path_key));
            groups[shard].inputs.push(input);
            continue;
        }
        lock(&shared.stats).screen_served += 1;
        if let (Some(cache), Some(key)) = (&shared.cache, path_key) {
            lock(cache).insert(
                key,
                CachedVerdict {
                    detection,
                    tier: Tier::Screen,
                },
            );
        }
        finish(
            shared,
            &request,
            Ok(Served {
                detection,
                tier: Tier::Screen,
                cache_hit: false,
                degraded: false,
            }),
        );
    }
    if degraded_served > 0 {
        if let Some(timeline) = &mut timeline {
            timeline.record(Stage::Degraded, screen_end_ns, shared.now_ns());
        }
    }
    groups.retain(|group| !group.requests.is_empty());
    if groups.is_empty() {
        if let (Some(obs), Some(timeline)) = (obs, timeline) {
            obs.retain_timeline(timeline);
        }
        return None;
    }
    Some(EscalationJob {
        groups,
        timeline,
        overlapped: false,
    })
}

/// Builder for [`Server`]; all validation happens in [`ServerBuilder::start`].
#[derive(Debug)]
pub struct ServerBuilder {
    screen: Arc<DetectionEngine>,
    quantized: Option<Arc<QuantizedNetwork>>,
    escalate: Vec<Arc<DetectionEngine>>,
    band: (f32, f32),
    workers: usize,
    queue_capacity: usize,
    policy: BatchPolicy,
    admission: Option<AdmissionPolicy>,
    degrade: Option<DegradePolicy>,
    cache: Option<CacheConfig>,
    pipeline: bool,
    /// `escalate`/`escalate_sharded` was called: an empty engine list must
    /// then fail loudly instead of silently serving tier-1 only.
    tiering_requested: bool,
    registry: Option<Arc<Registry>>,
    snapshot: Option<(PathBuf, Duration)>,
}

impl ServerBuilder {
    /// Adds a tier-2 escalation engine: inputs whose screening score lands in
    /// the closed uncertainty band `[low, high]` are re-scored by `engine`.
    ///
    /// The screening engine decides cheaply on confident scores; only the
    /// uncertain sliver pays for the expensive engine — the standard tiered
    /// pattern for suspicious-minority workloads.
    pub fn escalate(
        mut self,
        engine: impl Into<Arc<DetectionEngine>>,
        low: f32,
        high: f32,
    ) -> Self {
        self.escalate = vec![engine.into()];
        self.band = (low, high);
        self.tiering_requested = true;
        self
    }

    /// Adds a **sharded** tier-2: `shards` are escalation engines built from
    /// [`ptolemy_core::ClassPathSet::shard`] partitions of one canary set, and
    /// each in-band input is re-scored by the shard owning its screened class.
    /// A many-class model's canary memory and tier-2 extraction work split
    /// across the shards, while the union of shard verdicts stays bit-for-bit
    /// identical to the unsharded escalation engine.
    ///
    /// [`ServerBuilder::start`] validates the pairing via
    /// [`ptolemy_core::DetectionEngine::fingerprint`]: every shard must bind
    /// the same escalation program, share one decision threshold and one
    /// classifier-equipped configuration, serve the *same network instance* as
    /// the screening engine (class routing relies on both tiers predicting the
    /// identical class), and together the shards must own every class exactly
    /// once.
    ///
    /// # Example
    ///
    /// Shard engines reuse the complete escalation engine's fitted forest and
    /// threshold — parity requires the identical classifier:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use ptolemy_core::{variants, DetectionEngine, Profiler};
    /// use ptolemy_nn::{zoo, Network, TrainConfig, Trainer};
    /// use ptolemy_serve::Server;
    /// use ptolemy_tensor::{Rng64, Tensor};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut rng = Rng64::new(0);
    /// let mut net = zoo::mlp_net(&[8], 2, &mut rng)?;
    /// let samples: Vec<(Tensor, usize)> = (0..20)
    ///     .map(|i| (Tensor::full(&[8], (i % 2) as f32), i % 2))
    ///     .collect();
    /// Trainer::new(TrainConfig::default()).fit(&mut net, &samples)?;
    /// let network = Arc::new(net); // ONE instance shared by every tier
    /// let inputs: Vec<Tensor> = samples.iter().map(|(x, _)| x.clone()).collect();
    ///
    /// let build = |program: ptolemy_core::DetectionProgram| {
    ///     let paths = Profiler::new(program.clone()).profile(&network, &samples)?;
    ///     DetectionEngine::builder(network.clone(), program, paths)
    ///         .calibrate(&inputs[..8], &inputs[8..16])
    ///         .build()
    /// };
    /// let screen = build(variants::fw_ab(&network, 0.05)?)?;
    /// let full = build(variants::bw_cu(&network, 0.5)?)?;
    ///
    /// // Partition the complete canary set across two shard engines.
    /// let shards = full
    ///     .class_paths()
    ///     .shard(2)?
    ///     .into_iter()
    ///     .map(|shard_paths| {
    ///         Ok(Arc::new(
    ///             DetectionEngine::builder(network.clone(), full.program().clone(), shard_paths)
    ///                 .forest(full.forest().expect("calibrated").clone())
    ///                 .threshold(full.threshold())
    ///                 .build()?,
    ///         ))
    ///     })
    ///     .collect::<Result<Vec<_>, ptolemy_core::CoreError>>()?;
    ///
    /// let server = Server::builder(screen)
    ///     .escalate_sharded(shards, 0.25, 0.75)
    ///     .workers(2)
    ///     .start()?;
    /// let served = server.submit(inputs[0].clone())?.wait()?;
    /// assert!((0.0..=1.0).contains(&served.detection.score));
    /// let stats = server.shutdown();
    /// assert_eq!(stats.shard_escalations.len(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn escalate_sharded(
        mut self,
        shards: Vec<Arc<DetectionEngine>>,
        low: f32,
        high: f32,
    ) -> Self {
        self.escalate = shards;
        self.band = (low, high);
        self.tiering_requested = true;
        self
    }

    /// Runs the tier-1 screening pass on the **int8 quantized** inference
    /// path: one fused blocked-i8-GEMM forward per batch
    /// ([`ptolemy_core::DetectionEngine::detect_batch_quantized_with`])
    /// instead of the f32 kernels.  `calibration` is the
    /// [`QuantizedNetwork`] calibrated from the screening engine's own
    /// network — typically `screen.quantized_network()` when the engine was
    /// built with `DetectionEngineBuilder::quantized`, or a
    /// `QuantizedNetwork::quantize` result over the same `Arc<Network>`.
    ///
    /// # Contract: statistical, not bit parity
    ///
    /// Every other serving mode is pinned bit-for-bit to direct engine calls.
    /// The quantized screen is the one deliberate exception: int8 rounding
    /// perturbs activations, so screened verdicts are a *statistical* proxy
    /// for f32 — the `quantized_serve` benchmark gates the verdict agreement
    /// rate.  What is still guaranteed:
    ///
    /// * **Determinism** — i32 accumulation is exact, so serving a given
    ///   input always yields the identical verdict, across runs, batch
    ///   shapes and thread counts (served verdicts equal
    ///   `screen.detect_quantized(input)` bit-for-bit when nothing
    ///   escalates).
    /// * **f32 escalation** — in-band inputs re-score on the f32 escalation
    ///   tier, so uncertain verdicts are never decided by the quantized
    ///   approximation.
    /// * **No cache aliasing** — cache keys (and persisted cache files) are
    ///   seeded with an `+int8`-suffixed fingerprint, so int8 and f32
    ///   verdicts never answer for each other.
    ///
    /// [`ServerBuilder::start`] rejects a `calibration` network that was not
    /// calibrated from the screening engine's network instance with
    /// [`ServeError::TierMismatch`].
    pub fn quantized_screen(mut self, calibration: impl Into<Arc<QuantizedNetwork>>) -> Self {
        self.quantized = Some(calibration.into());
        self
    }

    /// Enables or disables cross-batch tier-2 pipelining (default **on**):
    /// each worker hands its escalation sliver to a bounded overlap thread and
    /// immediately screens the next batch, so tier-2 extraction of batch *k*
    /// overlaps tier-1 of batch *k+1* (the `forward_with_sink` streaming
    /// drivers make the tier-2 pass itself stream, so the overlap thread holds
    /// only the sliver's retained boundaries).  [`ServeStats::pipelined_batches`]
    /// / [`ServeStats::serial_batches`] report how often the handoff won.
    /// Verdicts are unaffected either way — pipelining reorders work between
    /// batches, never arithmetic within a request.
    pub fn pipeline_escalation(mut self, enabled: bool) -> Self {
        self.pipeline = enabled;
        self
    }

    /// Sets the number of worker threads (default 2).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the submission-queue capacity (default 256).  [`Server::submit`]
    /// blocks and [`Server::try_submit`] errors while the queue is full.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Enables deadline admission control (disabled by default).  With a
    /// policy set, [`Server::submit_with_deadline`] estimates the request's
    /// completion time from the queue depth and a service-time EMA, and sheds
    /// the submission with [`ServeError::Shed`] when the estimate (scaled by
    /// [`AdmissionPolicy::headroom`]) overshoots the deadline.  Submissions
    /// without a deadline are never shed, so plain [`Server::submit`] traffic
    /// is unaffected.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = Some(policy);
        self
    }

    /// Enables mixed-criticality degradation (disabled by default).  While
    /// the queue depth sits at or above the policy's high watermark, in-band
    /// requests take the tier-1 screening verdict instead of escalating
    /// (flagged via [`Served::degraded`], never cached); the server recovers
    /// once the queue drains to the low watermark.  See [`DegradePolicy`].
    pub fn degradation(mut self, policy: DegradePolicy) -> Self {
        self.degrade = Some(policy);
        self
    }

    /// Sets the adaptive batch-forming policy (default [`BatchPolicy::default`]).
    pub fn batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the path-prefix result cache (disabled by default; disabled
    /// serving is bit-for-bit identical to direct engine calls).
    pub fn cache(mut self, config: CacheConfig) -> Self {
        self.cache = Some(config);
        self
    }

    /// Attaches a [`ptolemy_obs::Registry`]: the server records per-stage
    /// latency histograms (queue wait, batch forming, cache lookup, screen,
    /// per-shard escalation, overlap-thread occupancy) and retains the most
    /// recent per-batch stage [`Timeline`]s for [`Server::metrics_json`].
    ///
    /// All of it is gated on [`Registry::enabled`] — attached-but-disabled
    /// serving costs one relaxed atomic load per stage (the `obs_overhead`
    /// bench experiment pins this within noise of a server built without this
    /// call).  The server also times queue-to-result latency on the
    /// registry's clock, so a [`ptolemy_obs::Clock::manual`] registry makes
    /// every serve timing deterministic under test.
    pub fn instrument(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Writes the [`Server::metrics_json`] snapshot to `path` every
    /// `interval` (atomic temp-file + rename), plus one final snapshot at
    /// shutdown after the workers drain.  The monitor thread is joined by
    /// [`Server::shutdown`]/`Drop`.
    pub fn snapshot_to(mut self, path: impl Into<PathBuf>, interval: Duration) -> Self {
        self.snapshot = Some((path.into(), interval));
        self
    }

    /// Validates the configuration and tier pairing, loads the persisted
    /// result cache (if configured and written by an identical engine), spawns
    /// the workers and returns the running server.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::TierMismatch`] if the tier engines cannot serve
    /// together (the typed rejection carries both build-time fingerprints) and
    /// [`ServeError::InvalidConfig`] for bad knobs.  Sharded escalation
    /// additionally requires every shard to bind the same program fingerprint,
    /// threshold and network instance as its peers (and the network instance
    /// of the screening tier), and the shards to own every class exactly once.
    pub fn start(self) -> Result<Server> {
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig(
                "a server needs at least one worker".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue capacity must be at least 1".into(),
            ));
        }
        self.policy.validate().map_err(ServeError::InvalidConfig)?;
        if let Some(admission) = &self.admission {
            admission.validate().map_err(ServeError::InvalidConfig)?;
        }
        if let Some(degrade) = &self.degrade {
            degrade.validate().map_err(ServeError::InvalidConfig)?;
        }
        if let Some((_, interval)) = &self.snapshot {
            if interval.is_zero() {
                return Err(ServeError::InvalidConfig(
                    "metrics snapshot interval must be non-zero".into(),
                ));
            }
        }
        if let Some(cache) = &self.cache {
            if cache.capacity == 0 {
                return Err(ServeError::InvalidConfig(
                    "cache capacity must be at least 1".into(),
                ));
            }
            if cache.prefix_segments == 0 {
                return Err(ServeError::InvalidConfig(
                    "cache prefix must cover at least one path segment".into(),
                ));
            }
        }
        let mismatch = |escalate: &DetectionEngine, reason: String| ServeError::TierMismatch {
            screen: self.screen.fingerprint().to_string(),
            escalate: escalate.fingerprint().to_string(),
            reason,
        };
        if self.screen.forest().is_none() {
            return Err(ServeError::InvalidConfig(
                "the screening engine has no classifier (build it with .calibrate(..) or \
                 .forest(..))"
                    .into(),
            ));
        }
        if self.tiering_requested && self.escalate.is_empty() {
            return Err(ServeError::InvalidConfig(
                "escalate_sharded requires at least one escalation shard".into(),
            ));
        }
        if let Some(qnet) = &self.quantized {
            // The quantized screen scores against the screen engine's canary
            // paths; a qnet calibrated from any other network instance would
            // be comparing apples to oranges.  Same ptr-eq discipline as the
            // sharded-escalation network check below.
            if !std::ptr::eq(qnet.network().as_ref(), self.screen.network()) {
                return Err(ServeError::TierMismatch {
                    screen: self.screen.fingerprint().to_string(),
                    escalate: "int8 quantized screen".into(),
                    reason: "the quantized screen network was calibrated from a different \
                             network instance than the screening engine serves"
                        .into(),
                });
            }
        }
        let screen_classes = self.screen.class_paths().num_classes();
        let mut owner_of: Vec<usize> = Vec::new();
        if !self.escalate.is_empty() {
            if !self.band.0.is_finite()
                || !self.band.1.is_finite()
                || self.band.0 > self.band.1
                || self.band.0 < 0.0
                || self.band.1 > 1.0
            {
                return Err(ServeError::InvalidConfig(format!(
                    "escalation band [{}, {}] must satisfy 0 <= low <= high <= 1",
                    self.band.0, self.band.1
                )));
            }
            for escalate in &self.escalate {
                if escalate.forest().is_none() {
                    return Err(mismatch(
                        escalate,
                        "the escalation engine has no classifier".into(),
                    ));
                }
                let escalate_classes = escalate.class_paths().num_classes();
                if screen_classes != escalate_classes {
                    return Err(mismatch(
                        escalate,
                        format!(
                            "tier class counts differ ({screen_classes} vs {escalate_classes}); \
                             the tiers were profiled on different tasks"
                        ),
                    ));
                }
            }
            // Sharded escalation pins stronger invariants: routing by the
            // *screened* class is only correct when every tier runs the same
            // network instance (so both tiers predict the identical class),
            // and bit-for-bit parity with the unsharded engine needs one
            // program and one decision threshold across the shards.
            let sharded =
                self.escalate.len() > 1 || self.escalate[0].class_paths().shard_classes().is_some();
            if sharded {
                let first = &self.escalate[0];
                for shard in &self.escalate {
                    if shard.fingerprint() != first.fingerprint() {
                        return Err(mismatch(
                            shard,
                            format!(
                                "escalation shards bind different programs ('{}' vs '{}')",
                                first.fingerprint(),
                                shard.fingerprint()
                            ),
                        ));
                    }
                    if shard.threshold().to_bits() != first.threshold().to_bits() {
                        return Err(mismatch(
                            shard,
                            format!(
                                "escalation shards bind different decision thresholds ({} vs {})",
                                first.threshold(),
                                shard.threshold()
                            ),
                        ));
                    }
                    if !std::ptr::eq(self.screen.network(), shard.network()) {
                        return Err(mismatch(
                            shard,
                            "sharded escalation requires every tier to serve the same \
                             network instance (class routing relies on both tiers \
                             predicting the identical class)"
                                .into(),
                        ));
                    }
                }
            }
            // Every class must be owned by exactly one shard (an unsharded
            // single engine owns them all).
            owner_of = vec![usize::MAX; screen_classes];
            for (index, shard) in self.escalate.iter().enumerate() {
                for class in shard.class_paths().owned_classes() {
                    if class >= screen_classes || owner_of[class] != usize::MAX {
                        return Err(mismatch(
                            shard,
                            format!("class {class} is claimed by more than one escalation shard"),
                        ));
                    }
                    owner_of[class] = index;
                }
            }
            if let Some(unowned) = owner_of.iter().position(|&owner| owner == usize::MAX) {
                return Err(mismatch(
                    &self.escalate[0],
                    format!("class {unowned} is owned by no escalation shard"),
                ));
            }
        }

        // Int8 and f32 screening produce different paths and verdicts for the
        // same input, so both the in-memory key seed and the persisted-cache
        // identity carry the mode: a cache written under one mode is never
        // consulted under the other.
        let cache_fingerprint = if self.quantized.is_some() {
            format!("{}+int8", self.screen.fingerprint())
        } else {
            self.screen.fingerprint().to_string()
        };
        let cache_seed = fnv1a(cache_fingerprint.as_bytes());
        // Build the result cache, reloading a persisted file only when it was
        // written under this screening engine's fingerprint (mode-suffixed)
        // and prefix depth.
        let mut stats = StatsInner::new(self.escalate.len());
        let (cache, input_keys, prefix_segments, persist_path) = match &self.cache {
            None => (None, None, 0, None),
            Some(config) => {
                let mut cache = LruCache::new(config.capacity);
                if let Some(path) = &config.persist_path {
                    match cache::load_persisted(path, &cache_fingerprint, config.prefix_segments) {
                        CacheLoad::Missing => {}
                        CacheLoad::Rejected => stats.cache_load_rejected = 1,
                        CacheLoad::Loaded(entries) => {
                            // Entries are most-recently-used first; insert in
                            // reverse so the restored cache replays the saved
                            // recency (and eviction) order.
                            for (key, verdict) in entries.into_iter().rev() {
                                cache.insert(key, verdict);
                            }
                            stats.cache_entries_loaded = cache.len() as u64;
                        }
                    }
                }
                (
                    Some(Mutex::new(cache)),
                    Some(Mutex::new(LruCache::new(config.capacity))),
                    config.prefix_segments,
                    config.persist_path.clone(),
                )
            }
        };
        let shards = self.escalate.len();
        let int8_screen = self.quantized.is_some();
        let obs = self
            .registry
            .map(|registry| ServeObs::attach(registry, shards, int8_screen));
        let latency_budget_ns =
            u64::try_from(self.policy.latency_budget.as_nanos()).unwrap_or(u64::MAX);
        let (snapshot_path, snapshot_interval) = match self.snapshot {
            Some((path, interval)) => (Some(path), Some(interval)),
            None => (None, None),
        };
        let (degrade_enter_at, degrade_exit_at) = self
            .degrade
            .map(|policy| policy.thresholds(self.queue_capacity))
            .unwrap_or((usize::MAX, 0));
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(self.queue_capacity),
                blocked_submitters: 0,
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            monitor_wake: Condvar::new(),
            screen: self.screen,
            quantized: self.quantized,
            escalate: self.escalate,
            owner_of,
            band: self.band,
            pipeline: self.pipeline,
            policy: self.policy,
            queue_capacity: self.queue_capacity,
            workers: self.workers,
            admission: self.admission,
            degrade: self.degrade,
            degrade_enter_at,
            degrade_exit_at,
            degraded: AtomicBool::new(false),
            service_ema_ns: AtomicU64::new(0),
            cache,
            input_keys,
            cache_seed,
            cache_fingerprint,
            prefix_segments,
            persist_path,
            stats: Mutex::new(stats),
            obs,
            fallback_clock: Clock::monotonic(),
            latency_budget_ns,
            snapshot_path,
            density_ema_bits: AtomicU32::new(0.0f32.to_bits()),
            cap_cache: Mutex::new(None),
            #[cfg(test)]
            fail_next_screen: std::sync::atomic::AtomicBool::new(false),
            #[cfg(test)]
            fail_next_escalation: std::sync::atomic::AtomicBool::new(false),
        });
        let workers = (0..self.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ptolemy-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| ServeError::InvalidConfig(format!("failed to spawn worker: {e}")))
            })
            .collect::<Result<Vec<_>>>()?;
        let monitor = match snapshot_interval {
            Some(interval) => {
                let shared = shared.clone();
                Some(
                    std::thread::Builder::new()
                        .name("ptolemy-serve-metrics".into())
                        .spawn(move || monitor_loop(&shared, interval))
                        .map_err(|e| {
                            ServeError::InvalidConfig(format!(
                                "failed to spawn metrics monitor: {e}"
                            ))
                        })?,
                )
            }
            None => None,
        };
        Ok(Server {
            shared,
            workers,
            monitor,
        })
    }
}

/// The periodic metrics-snapshot thread: writes [`Server::metrics_json`] to
/// the configured path every `interval` until shutdown.  Waits on its own
/// `monitor_wake` condvar (never the workers' `not_empty`, whose
/// `notify_one` wake-ups must reach a worker), so timeouts re-check the
/// deadline and the shutdown broadcast ends the loop promptly.
fn monitor_loop(shared: &Shared, interval: Duration) {
    let Some(path) = shared.snapshot_path.as_deref() else {
        return;
    };
    let interval_ns = u64::try_from(interval.as_nanos()).unwrap_or(u64::MAX);
    let mut deadline_ns = shared.now_ns().saturating_add(interval_ns);
    let mut state = lock(&shared.state);
    loop {
        if state.shutdown {
            return; // stop_and_join writes the final snapshot after the join
        }
        let now_ns = shared.now_ns();
        if now_ns >= deadline_ns {
            drop(state);
            write_snapshot(shared, path);
            deadline_ns = shared.now_ns().saturating_add(interval_ns);
            state = lock(&shared.state);
            continue;
        }
        let (guard, _timeout) = sync::wait_timeout(
            &shared.monitor_wake,
            state,
            Duration::from_nanos(deadline_ns - now_ns),
        );
        state = guard;
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_u64(FNV_OFFSET, bytes.iter().map(|b| u64::from(*b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use ptolemy_core::{variants, DetectionEngineBuilder, Profiler};
    use ptolemy_nn::{zoo, TrainConfig, Trainer};
    use ptolemy_tensor::Rng64;

    /// A trained 2-class MLP with benign/adversarial calibration inputs (the
    /// same synthetic setup the core engine tests use).
    struct Fixture {
        network: Arc<ptolemy_nn::Network>,
        samples: Vec<(Tensor, usize)>,
        benign: Vec<Tensor>,
        adversarial: Vec<Tensor>,
    }

    fn fixture(classes: usize) -> Fixture {
        let dims = 8;
        let mut rng = Rng64::new(23 + classes as u64);
        let prototypes: Vec<Vec<f32>> = (0..classes)
            .map(|c| {
                (0..dims)
                    .map(|d| if d % classes == c { 1.0 } else { 0.0 })
                    .collect()
            })
            .collect();
        let mut samples = Vec::new();
        for (class, prototype) in prototypes.iter().enumerate() {
            for _ in 0..25 {
                let data: Vec<f32> = prototype.iter().map(|v| v + 0.08 * rng.normal()).collect();
                samples.push((Tensor::from_vec(data, &[dims]).unwrap(), class));
            }
        }
        let mut net = zoo::mlp_net(&[dims], classes, &mut rng).unwrap();
        Trainer::new(TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        })
        .fit(&mut net, &samples)
        .unwrap();

        let benign: Vec<Tensor> = samples.iter().take(20).map(|(x, _)| x.clone()).collect();
        let mut adversarial = Vec::new();
        for (x, y) in samples.iter().take(20) {
            let other = (*y + 1) % classes;
            let data: Vec<f32> = x
                .as_slice()
                .iter()
                .zip(&prototypes[other])
                .map(|(a, b)| a + 1.2 * b)
                .collect();
            adversarial.push(Tensor::from_vec(data, &[dims]).unwrap());
        }
        Fixture {
            network: Arc::new(net),
            samples,
            benign,
            adversarial,
        }
    }

    fn engine(fx: &Fixture, program: ptolemy_core::DetectionProgram) -> DetectionEngineBuilder {
        let class_paths = Profiler::new(program.clone())
            .profile(&fx.network, &fx.samples)
            .unwrap();
        DetectionEngine::builder(fx.network.clone(), program, class_paths)
            .calibrate(&fx.benign, &fx.adversarial)
    }

    fn tiered(fx: &Fixture) -> (Arc<DetectionEngine>, Arc<DetectionEngine>) {
        let screen = engine(fx, variants::fw_ab(&fx.network, 0.3).unwrap())
            .build()
            .unwrap();
        let expensive = engine(fx, variants::bw_cu(&fx.network, 0.5).unwrap())
            .build()
            .unwrap();
        (Arc::new(screen), Arc::new(expensive))
    }

    #[test]
    fn served_verdicts_match_direct_detection_without_cache() {
        let fx = fixture(2);
        let (screen, expensive) = tiered(&fx);
        let server = Server::builder(screen.clone())
            .escalate(expensive.clone(), 0.25, 0.75)
            .workers(3)
            .start()
            .unwrap();

        let inputs: Vec<Tensor> = fx.benign.iter().chain(&fx.adversarial).cloned().collect();
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        for (input, ticket) in inputs.iter().zip(tickets) {
            let served = ticket.wait().unwrap();
            assert!(!served.cache_hit);
            // Routing is decided by the screen score; the verdict must be
            // bit-for-bit what the routed engine returns directly.
            let screen_score = screen.detect(input).unwrap().score;
            let expected_tier = if (0.25..=0.75).contains(&screen_score) {
                Tier::Escalated
            } else {
                Tier::Screen
            };
            assert_eq!(served.tier, expected_tier);
            let direct = match served.tier {
                Tier::Screen => screen.detect(input).unwrap(),
                Tier::Escalated => expensive.detect(input).unwrap(),
            };
            assert_eq!(served.detection, direct);
            assert_eq!(served.detection.score.to_bits(), direct.score.to_bits());
            assert_eq!(
                served.detection.similarity.to_bits(),
                direct.similarity.to_bits()
            );
        }

        let stats = server.shutdown();
        assert_eq!(stats.submitted, inputs.len() as u64);
        assert_eq!(stats.completed, inputs.len() as u64);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.screen_served + stats.escalated, inputs.len() as u64);
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
        assert!(stats.batches > 0);
        assert!(stats.p99_latency_ms >= stats.p50_latency_ms);
    }

    #[test]
    fn quantized_screen_serves_bit_identical_int8_verdicts() {
        let fx = fixture(2);
        let screen = Arc::new(
            engine(&fx, variants::fw_ab(&fx.network, 0.3).unwrap())
                .quantized(&fx.benign)
                .build()
                .unwrap(),
        );
        let qnet = screen.quantized_network().unwrap().clone();
        let server = Server::builder(screen.clone())
            .quantized_screen(qnet)
            .workers(2)
            .start()
            .unwrap();

        let inputs: Vec<Tensor> = fx.benign.iter().chain(&fx.adversarial).cloned().collect();
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        for (input, ticket) in inputs.iter().zip(tickets) {
            let served = ticket.wait().unwrap();
            assert!(!served.cache_hit);
            // No escalation tier: every verdict is the direct int8 one,
            // bit for bit (the int8 pass is exactly deterministic).
            assert_eq!(served.tier, Tier::Screen);
            let direct = screen.detect_quantized(input).unwrap();
            assert_eq!(served.detection, direct);
            assert_eq!(served.detection.score.to_bits(), direct.score.to_bits());
            assert_eq!(
                served.detection.similarity.to_bits(),
                direct.similarity.to_bits()
            );
        }

        let stats = server.shutdown();
        assert_eq!(stats.completed, inputs.len() as u64);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.screen_served, inputs.len() as u64);
        // Every freshly-screened request went through the int8 path.
        assert_eq!(stats.int8_screens, inputs.len() as u64);
    }

    #[test]
    fn quantized_screen_escalations_rescore_in_f32() {
        let fx = fixture(2);
        let screen = Arc::new(
            engine(&fx, variants::fw_ab(&fx.network, 0.3).unwrap())
                .quantized(&fx.benign)
                .build()
                .unwrap(),
        );
        let expensive = Arc::new(
            engine(&fx, variants::bw_cu(&fx.network, 0.5).unwrap())
                .build()
                .unwrap(),
        );
        let qnet = screen.quantized_network().unwrap().clone();
        let server = Server::builder(screen.clone())
            .quantized_screen(qnet)
            .escalate(expensive.clone(), 0.25, 0.75)
            .workers(2)
            .start()
            .unwrap();

        let inputs: Vec<Tensor> = fx.benign.iter().chain(&fx.adversarial).cloned().collect();
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        let mut escalated = 0u64;
        for (input, ticket) in inputs.iter().zip(tickets) {
            let served = ticket.wait().unwrap();
            // Routing is decided by the *int8* screen score; escalated
            // requests are re-scored by the f32 tier-2 engine.
            let screen_score = screen.detect_quantized(input).unwrap().score;
            let expected_tier = if (0.25..=0.75).contains(&screen_score) {
                Tier::Escalated
            } else {
                Tier::Screen
            };
            assert_eq!(served.tier, expected_tier);
            let direct = match served.tier {
                Tier::Screen => screen.detect_quantized(input).unwrap(),
                Tier::Escalated => {
                    escalated += 1;
                    expensive.detect(input).unwrap()
                }
            };
            assert_eq!(served.detection.score.to_bits(), direct.score.to_bits());
        }

        let stats = server.shutdown();
        assert_eq!(stats.escalated, escalated);
        // int8_screens counts every freshly-screened request, whether it was
        // then screen-served or escalated.
        assert_eq!(stats.int8_screens, inputs.len() as u64);
        assert_eq!(stats.screen_served + stats.escalated, inputs.len() as u64);
    }

    #[test]
    fn quantized_screen_calibrated_elsewhere_is_rejected() {
        let fx = fixture(2);
        let (screen, _) = tiered(&fx);
        // Same architecture, same calibration recipe — but a different
        // network *instance*, so its quantized weights describe a network
        // this screen engine does not serve.
        let foreign = fixture(2);
        let qnet = ptolemy_nn::QuantizedNetwork::quantize(foreign.network.clone(), &foreign.benign)
            .unwrap();
        let err = Server::builder(screen.clone())
            .quantized_screen(qnet)
            .start()
            .unwrap_err();
        match err {
            ServeError::TierMismatch {
                screen: s,
                escalate,
                reason,
            } => {
                assert_eq!(s, screen.fingerprint());
                assert_eq!(escalate, "int8 quantized screen");
                assert!(reason.contains("different network instance"), "{reason}");
            }
            other => panic!("expected TierMismatch, got {other:?}"),
        }
    }

    #[test]
    fn int8_and_f32_verdict_caches_never_alias() {
        let path = std::env::temp_dir().join(format!(
            "ptolemy-serve-int8-cache-{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let fx = fixture(2);
        let screen = Arc::new(
            engine(&fx, variants::fw_ab(&fx.network, 0.3).unwrap())
                .quantized(&fx.benign)
                .build()
                .unwrap(),
        );
        let config = CacheConfig {
            capacity: 64,
            prefix_segments: usize::MAX,
            persist_path: Some(path.clone()),
        };

        // Populate and flush a cache under the int8 screen.
        let server = Server::builder(screen.clone())
            .quantized_screen(screen.quantized_network().unwrap().clone())
            .workers(1)
            .cache(config.clone())
            .start()
            .unwrap();
        let first = server.submit(fx.benign[0].clone()).unwrap().wait().unwrap();
        assert!(!first.cache_hit);
        let stats = server.shutdown();
        assert!(stats.cache_entries_persisted >= 1);

        // Back in int8 mode the file replays bit for bit.
        let server = Server::builder(screen.clone())
            .quantized_screen(screen.quantized_network().unwrap().clone())
            .workers(1)
            .cache(config.clone())
            .start()
            .unwrap();
        assert!(server.stats().cache_entries_loaded >= 1);
        let replayed = server.submit(fx.benign[0].clone()).unwrap().wait().unwrap();
        assert!(replayed.cache_hit);
        assert_eq!(
            replayed.detection.score.to_bits(),
            first.detection.score.to_bits()
        );
        drop(server);

        // The *same* engine in f32 mode must reject the int8-fingerprinted
        // file: an int8 verdict may disagree with the f32 one for the same
        // input, so replaying it would silently cross tiers.  (Checked last —
        // every shutdown re-persists under its own fingerprint.)
        let server = Server::builder(screen.clone())
            .workers(1)
            .cache(config)
            .start()
            .unwrap();
        let stats = server.stats();
        assert_eq!(stats.cache_load_rejected, 1);
        assert_eq!(stats.cache_entries_loaded, 0);
        drop(server);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn adaptive_cap_shrinks_to_fit_escalation_shards() {
        use crate::batch::{adaptive_cap, adaptive_cap_tiered};

        let fx = fixture(2);
        let (screen, expensive) = tiered(&fx);
        let ops_per_input = |engine: &DetectionEngine| {
            let report = engine.estimate_batch(1, 1.0).unwrap().software.unwrap();
            report.inference_macs
                + report.sort_elements
                + report.compare_ops
                + report.accumulate_ops
        };
        let screen_ops = ops_per_input(&screen);
        let expensive_ops = ops_per_input(&expensive);
        assert!(
            expensive_ops > screen_ops,
            "fixture premise: tier-2 ({expensive_ops} ops) must out-cost tier-1 ({screen_ops})"
        );

        // Tune the policy so the screen alone would allow 8 inputs per batch.
        let policy = BatchPolicy {
            max_batch: 32,
            target_batch_latency_ms: 8.0,
            software_ops_per_ms: screen_ops as f64,
            ..BatchPolicy::default()
        };
        let screen_cap = adaptive_cap(&screen, &policy, 1.0);
        assert_eq!(screen_cap, 8);
        let shard_cap = adaptive_cap(&expensive, &policy, 1.0);
        let tiered_cap =
            adaptive_cap_tiered(&screen, std::slice::from_ref(&expensive), &policy, 1.0);
        // The batch must also fit the worst case — the whole batch escalating
        // to the expensive shard — so the tiered cap is the minimum.
        assert_eq!(tiered_cap, screen_cap.min(shard_cap));
        assert!(tiered_cap < screen_cap, "{tiered_cap} vs {screen_cap}");
        // Without shards the tiered cap degenerates to the screen-only cap.
        assert_eq!(adaptive_cap_tiered(&screen, &[], &policy, 1.0), screen_cap);

        // And the running server applies the shard-aware cap (computed at its
        // current density estimate, which starts at 0.0 before any batch).
        let server = Server::builder(screen.clone())
            .escalate(expensive, 0.25, 0.75)
            .batch_policy(policy)
            .workers(1)
            .start()
            .unwrap();
        let at_density = server.shared.density_ema();
        assert_eq!(
            server.shared.current_cap(),
            adaptive_cap_tiered(&screen, &server.shared.escalate, &policy, at_density)
        );
        server.shutdown();
    }

    #[test]
    fn duplicate_inputs_hit_the_path_prefix_cache() {
        let fx = fixture(2);
        let (screen, expensive) = tiered(&fx);
        let server = Server::builder(screen)
            .escalate(expensive, 0.0, 1.0) // everything escalates on a miss
            .workers(1)
            .cache(CacheConfig {
                capacity: 64,
                prefix_segments: usize::MAX, // exact-duplicate matching
                persist_path: None,
            })
            .start()
            .unwrap();

        // Serve the same input twice, waiting in between so the second lookup
        // deterministically sees the first verdict.
        let first = server.submit(fx.benign[0].clone()).unwrap().wait().unwrap();
        assert!(!first.cache_hit);
        assert_eq!(first.tier, Tier::Escalated);
        let second = server.submit(fx.benign[0].clone()).unwrap().wait().unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.detection, first.detection);
        assert_eq!(second.tier, first.tier);

        let stats = server.shutdown();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-12);
        // The cached request skipped tier-2 re-scoring entirely.
        assert_eq!(stats.escalated, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn mismatched_tier_engines_are_rejected_with_fingerprints() {
        let two = fixture(2);
        let three = fixture(3);
        let (screen, _) = tiered(&two);
        let other_task = Arc::new(
            engine(&three, variants::bw_cu(&three.network, 0.5).unwrap())
                .build()
                .unwrap(),
        );
        let err = Server::builder(screen.clone())
            .escalate(other_task.clone(), 0.3, 0.7)
            .start()
            .unwrap_err();
        match err {
            ServeError::TierMismatch {
                screen: s,
                escalate: e,
                reason,
            } => {
                assert_eq!(s, screen.fingerprint());
                assert_eq!(e, other_task.fingerprint());
                assert!(reason.contains("class counts"), "{reason}");
            }
            other => panic!("expected TierMismatch, got {other:?}"),
        }

        // An escalation engine that cannot produce verdicts is also mismatched.
        let program = variants::bw_cu(&two.network, 0.5).unwrap();
        let class_paths = Profiler::new(program.clone())
            .profile(&two.network, &two.samples)
            .unwrap();
        let forestless = DetectionEngine::builder(two.network.clone(), program, class_paths)
            .build()
            .unwrap();
        assert!(matches!(
            Server::builder(screen)
                .escalate(forestless, 0.3, 0.7)
                .start(),
            Err(ServeError::TierMismatch { .. })
        ));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let fx = fixture(2);
        let (screen, expensive) = tiered(&fx);
        assert!(matches!(
            Server::builder(screen.clone()).workers(0).start(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            Server::builder(screen.clone()).queue_capacity(0).start(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            Server::builder(screen.clone())
                .batch_policy(BatchPolicy {
                    max_batch: 0,
                    ..BatchPolicy::default()
                })
                .start(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            Server::builder(screen.clone())
                .cache(CacheConfig {
                    capacity: 0,
                    prefix_segments: 2,
                    persist_path: None,
                })
                .start(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            Server::builder(screen.clone())
                .cache(CacheConfig {
                    capacity: 8,
                    prefix_segments: 0,
                    persist_path: None,
                })
                .start(),
            Err(ServeError::InvalidConfig(_))
        ));
        // An empty shard list must not silently degrade to tier-1-only
        // serving (the band would go unvalidated and nothing would escalate).
        assert!(matches!(
            Server::builder(screen.clone())
                .escalate_sharded(Vec::new(), 0.3, 0.7)
                .start(),
            Err(ServeError::InvalidConfig(_))
        ));
        // Inverted or out-of-range escalation bands.
        assert!(matches!(
            Server::builder(screen.clone())
                .escalate(expensive.clone(), 0.8, 0.2)
                .start(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            Server::builder(screen.clone())
                .escalate(expensive, -0.1, 1.2)
                .start(),
            Err(ServeError::InvalidConfig(_))
        ));
        // A screening engine without a classifier cannot serve verdicts.
        let program = variants::fw_ab(&fx.network, 0.3).unwrap();
        let class_paths = Profiler::new(program.clone())
            .profile(&fx.network, &fx.samples)
            .unwrap();
        let forestless = DetectionEngine::builder(fx.network.clone(), program, class_paths)
            .build()
            .unwrap();
        assert!(matches!(
            Server::builder(forestless).start(),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn blocked_submitters_cut_stalled_batches_immediately() {
        let fx = fixture(2);
        let (screen, _) = tiered(&fx);
        // Queue of 2, one worker, and a latency budget far beyond the test:
        // only the stalled-batch cut (or shutdown) can release anything.
        let server = Server::builder(screen)
            .workers(1)
            .queue_capacity(2)
            .batch_policy(BatchPolicy {
                max_batch: 16,
                latency_budget: Duration::from_secs(30),
                target_batch_latency_ms: 1e9,
                ..BatchPolicy::default()
            })
            .start()
            .unwrap();

        let started = std::time::Instant::now();
        // The third blocking submit fills the queue; the worker must cut the
        // stalled batch right away instead of waiting out the 30 s budget.
        let tickets: Vec<Ticket> = std::thread::scope(|scope| {
            let server = &server;
            scope
                .spawn(move || {
                    (0..3)
                        .map(|i| server.submit(fx.benign[i].clone()).unwrap())
                        .collect()
                })
                .join()
                .unwrap()
        });
        let mut tickets = tickets.into_iter();
        tickets.next().unwrap().wait().unwrap();
        tickets.next().unwrap().wait().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "stalled batch must cut on backpressure, not on the latency budget"
        );
        // The last request sits alone under the huge budget; shutdown flushes it.
        let last = tickets.next().unwrap();
        server.shutdown();
        last.wait().unwrap();
    }

    #[test]
    fn engine_errors_resolve_tickets_instead_of_stranding_them() {
        let fx = fixture(2);
        let (screen, _) = tiered(&fx);
        let server = Server::builder(screen).workers(1).start().unwrap();
        // Wrong input shape for the 8-dim MLP: the engine errors, the ticket
        // still resolves, and the failure is counted.
        let bad = Tensor::full(&[3], 0.5);
        let err = server.submit(bad).unwrap().wait().unwrap_err();
        assert!(matches!(err, ServeError::Engine(_)));
        let ok = server.submit(fx.benign[0].clone()).unwrap().wait();
        assert!(ok.is_ok(), "the worker must survive a failed request");
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn bounded_queue_applies_backpressure_and_drains_on_shutdown() {
        let fx = fixture(2);
        let (screen, _) = tiered(&fx);
        // A huge latency budget keeps the single worker waiting to fill its
        // batch, so the queue deterministically fills up.
        let server = Server::builder(screen)
            .workers(1)
            .queue_capacity(2)
            .batch_policy(BatchPolicy {
                max_batch: 16,
                latency_budget: Duration::from_secs(30),
                target_batch_latency_ms: 1e9,
                ..BatchPolicy::default()
            })
            .start()
            .unwrap();

        let t1 = server.try_submit(fx.benign[0].clone()).unwrap();
        let t2 = server.try_submit(fx.benign[1].clone()).unwrap();
        assert!(matches!(
            server.try_submit(fx.benign[2].clone()),
            Err(ServeError::QueueFull)
        ));
        assert_eq!(server.pending(), 2);
        assert!(!t1.is_ready());

        // Shutdown flushes the partial batch; every ticket resolves.
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert!(t1.is_ready() && t2.is_ready());
        t1.wait().unwrap();
        t2.wait().unwrap();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.max_batch, 2);
        assert_eq!(stats.mean_batch, 2.0);
    }

    /// Escalation shards built from `full`'s canary set, forest and threshold
    /// — the recipe [`ServerBuilder::escalate_sharded`] documents.
    fn shard_engines(
        fx: &Fixture,
        full: &Arc<DetectionEngine>,
        n: usize,
    ) -> Vec<Arc<DetectionEngine>> {
        full.class_paths()
            .shard(n)
            .unwrap()
            .into_iter()
            .map(|paths| {
                Arc::new(
                    DetectionEngine::builder(fx.network.clone(), full.program().clone(), paths)
                        .forest(full.forest().unwrap().clone())
                        .threshold(full.threshold())
                        .build()
                        .unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn sharded_escalation_matches_direct_detection_and_counts_per_shard() {
        let fx = fixture(3);
        let (screen, expensive) = tiered(&fx);
        let shards = shard_engines(&fx, &expensive, 2);
        let server = Server::builder(screen)
            .escalate_sharded(shards, 0.0, 1.0) // everything escalates
            .workers(1)
            .start()
            .unwrap();
        assert!(server.escalation_engine().is_none());
        assert_eq!(server.escalation_shards().len(), 2);

        let inputs: Vec<Tensor> = fx.benign.iter().chain(&fx.adversarial).cloned().collect();
        for input in &inputs {
            let served = server.submit(input.clone()).unwrap().wait().unwrap();
            assert_eq!(served.tier, Tier::Escalated);
            // The union of shard verdicts is bit-for-bit the unsharded
            // escalation engine's verdict.
            let direct = expensive.detect(input).unwrap();
            assert_eq!(served.detection, direct);
            assert_eq!(served.detection.score.to_bits(), direct.score.to_bits());
            assert_eq!(
                served.detection.similarity.to_bits(),
                direct.similarity.to_bits()
            );
        }

        let stats = server.shutdown();
        assert_eq!(stats.escalated, inputs.len() as u64);
        assert_eq!(stats.shard_escalations.len(), 2);
        assert_eq!(stats.shard_escalations.iter().sum::<u64>(), stats.escalated);
        // Every batch had an escalation sliver, handled exactly once each.
        assert_eq!(
            stats.pipelined_batches + stats.serial_batches,
            stats.batches
        );
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn pipelining_can_be_disabled_and_is_counted() {
        let fx = fixture(2);
        let (screen, expensive) = tiered(&fx);
        let server = Server::builder(screen)
            .escalate(expensive, 0.0, 1.0)
            .workers(1)
            .pipeline_escalation(false)
            .start()
            .unwrap();
        for input in &fx.benign {
            server.submit(input.clone()).unwrap().wait().unwrap();
        }
        let stats = server.shutdown();
        assert!(stats.escalated > 0);
        assert_eq!(stats.pipelined_batches, 0);
        assert!(stats.serial_batches > 0);
    }

    #[test]
    fn invalid_shard_configurations_are_rejected_with_fingerprints() {
        let fx = fixture(3);
        let (screen, expensive) = tiered(&fx);
        let set = expensive.class_paths();
        let shard_from = |paths: ptolemy_core::ClassPathSet, threshold: f32| {
            Arc::new(
                DetectionEngine::builder(fx.network.clone(), expensive.program().clone(), paths)
                    .forest(expensive.forest().unwrap().clone())
                    .threshold(threshold)
                    .build()
                    .unwrap(),
            )
        };
        let reason_of = |err: ServeError| match err {
            ServeError::TierMismatch { reason, .. } => reason,
            other => panic!("expected TierMismatch, got {other:?}"),
        };

        // Overlapping ownership: class 1 claimed twice.
        let overlapping = vec![
            shard_from(set.subset(&[0, 1]).unwrap(), expensive.threshold()),
            shard_from(set.subset(&[1, 2]).unwrap(), expensive.threshold()),
        ];
        let reason = reason_of(
            Server::builder(screen.clone())
                .escalate_sharded(overlapping, 0.3, 0.7)
                .start()
                .unwrap_err(),
        );
        assert!(reason.contains("more than one"), "{reason}");

        // Missing ownership: nobody owns class 1.
        let gappy = vec![
            shard_from(set.subset(&[0]).unwrap(), expensive.threshold()),
            shard_from(set.subset(&[2]).unwrap(), expensive.threshold()),
        ];
        let reason = reason_of(
            Server::builder(screen.clone())
                .escalate_sharded(gappy, 0.3, 0.7)
                .start()
                .unwrap_err(),
        );
        assert!(reason.contains("no escalation shard"), "{reason}");

        // Diverging decision thresholds across shards.
        let skewed = vec![
            shard_from(set.subset(&[0, 1]).unwrap(), expensive.threshold()),
            shard_from(set.subset(&[2]).unwrap(), 0.25),
        ];
        let reason = reason_of(
            Server::builder(screen.clone())
                .escalate_sharded(skewed, 0.3, 0.7)
                .start()
                .unwrap_err(),
        );
        assert!(reason.contains("thresholds"), "{reason}");

        // Shards serving a different network instance than the screen tier:
        // class routing would compare tier-1 and tier-2 predictions of
        // different models, so the pairing is rejected even though the
        // fingerprints, class counts and thresholds all line up.
        let other = fixture(3);
        let (_, other_expensive) = tiered(&other);
        let foreign = other_expensive
            .class_paths()
            .shard(2)
            .unwrap()
            .into_iter()
            .map(|paths| {
                Arc::new(
                    DetectionEngine::builder(
                        other.network.clone(),
                        other_expensive.program().clone(),
                        paths,
                    )
                    .forest(other_expensive.forest().unwrap().clone())
                    .threshold(other_expensive.threshold())
                    .build()
                    .unwrap(),
                )
            })
            .collect();
        let reason = reason_of(
            Server::builder(screen)
                .escalate_sharded(foreign, 0.3, 0.7)
                .start()
                .unwrap_err(),
        );
        assert!(reason.contains("network instance"), "{reason}");
    }

    #[test]
    fn persisted_cache_reloads_for_the_same_engine_and_rejects_others() {
        let path =
            std::env::temp_dir().join(format!("ptolemy-serve-unit-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let fx = fixture(2);
        let (screen, expensive) = tiered(&fx);
        let config = CacheConfig {
            capacity: 64,
            prefix_segments: usize::MAX,
            persist_path: Some(path.clone()),
        };

        // First run: populate and flush the cache.
        let server = Server::builder(screen.clone())
            .workers(1)
            .cache(config.clone())
            .start()
            .unwrap();
        let first = server.submit(fx.benign[0].clone()).unwrap().wait().unwrap();
        assert!(!first.cache_hit);
        let second = server.submit(fx.benign[0].clone()).unwrap().wait().unwrap();
        assert!(second.cache_hit);
        let stats = server.shutdown();
        assert_eq!(stats.cache_entries_loaded, 0);
        assert_eq!(stats.cache_load_rejected, 0);
        assert!(stats.cache_entries_persisted >= 1);

        // Restart with the identical engine: the first lookup is already a
        // hit, replaying the pre-restart verdict bit for bit.
        let server = Server::builder(screen.clone())
            .workers(1)
            .cache(config.clone())
            .start()
            .unwrap();
        assert_eq!(
            server.stats().cache_entries_loaded,
            stats.cache_entries_persisted
        );
        let replayed = server.submit(fx.benign[0].clone()).unwrap().wait().unwrap();
        assert!(replayed.cache_hit);
        assert_eq!(replayed.detection, first.detection);
        assert_eq!(
            replayed.detection.score.to_bits(),
            first.detection.score.to_bits()
        );
        drop(server);

        // A different screening engine must ignore the file.
        let server = Server::builder(expensive)
            .workers(1)
            .cache(config)
            .start()
            .unwrap();
        let stats = server.stats();
        assert_eq!(stats.cache_load_rejected, 1);
        assert_eq!(stats.cache_entries_loaded, 0);
        let cold = server.submit(fx.benign[0].clone()).unwrap().wait().unwrap();
        assert!(!cold.cache_hit);
        drop(server);
        let _ = std::fs::remove_file(&path);
    }
    #[test]
    fn panicking_screen_worker_degrades_and_drains() {
        let fx = fixture(2);
        let (screen, _) = tiered(&fx);
        let server = Server::builder(screen).workers(1).start().unwrap();

        // Arm the injection: the next screening pass panics mid-batch.
        server.shared.fail_next_screen.store(true, Ordering::SeqCst);
        let err = server
            .submit(fx.benign[0].clone())
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, ServeError::Canceled(_)), "{err:?}");

        // The sole worker survived the panic and still drains the queue.
        let served = server.submit(fx.benign[1].clone()).unwrap().wait().unwrap();
        assert_eq!(served.tier, Tier::Screen);
        let stats = server.shutdown();
        assert_eq!(stats.worker_panics, 1, "{stats:?}");
        assert!(stats.failed >= 1, "{stats:?}");
        assert!(stats.completed >= 1, "{stats:?}");
    }

    #[test]
    fn panicking_escalation_worker_degrades_and_drains() {
        let fx = fixture(2);
        let (screen, expensive) = tiered(&fx);
        // Band [0, 1] covers every calibrated score, so requests escalate;
        // inline escalation keeps the panic on the worker thread itself.
        let server = Server::builder(screen)
            .escalate(expensive, 0.0, 1.0)
            .pipeline_escalation(false)
            .workers(1)
            .start()
            .unwrap();

        server
            .shared
            .fail_next_escalation
            .store(true, Ordering::SeqCst);
        let err = server
            .submit(fx.adversarial[0].clone())
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, ServeError::Canceled(_)), "{err:?}");

        let served = server
            .submit(fx.adversarial[1].clone())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(served.tier, Tier::Escalated);
        let stats = server.shutdown();
        assert_eq!(stats.worker_panics, 1, "{stats:?}");
    }

    #[test]
    fn panic_on_pipelined_escalation_thread_degrades_and_drains() {
        let fx = fixture(2);
        let (screen, expensive) = tiered(&fx);
        // Same as above, but the panic fires on the per-worker overlap thread,
        // proving the recovery path holds off the worker thread too.
        let server = Server::builder(screen)
            .escalate(expensive, 0.0, 1.0)
            .pipeline_escalation(true)
            .workers(1)
            .start()
            .unwrap();

        server
            .shared
            .fail_next_escalation
            .store(true, Ordering::SeqCst);
        let err = server
            .submit(fx.adversarial[0].clone())
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, ServeError::Canceled(_)), "{err:?}");

        let served = server
            .submit(fx.adversarial[1].clone())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(served.tier, Tier::Escalated);
        let stats = server.shutdown();
        assert_eq!(stats.worker_panics, 1, "{stats:?}");
    }

    /// Parses a named stage histogram out of a metrics snapshot.
    fn stage_hist(metrics: &JsonValue, name: &str) -> ptolemy_obs::Histogram {
        let hist = metrics
            .get("registry")
            .and_then(|r| r.get("histograms"))
            .and_then(|h| h.get(name))
            .unwrap_or_else(|| panic!("histogram {name} missing from snapshot"));
        ptolemy_obs::Histogram::from_json(hist).expect("valid histogram JSON")
    }

    #[test]
    fn instrumented_server_records_stage_histograms_and_timelines() {
        let fx = fixture(2);
        let (screen, expensive) = tiered(&fx);
        let registry = Arc::new(Registry::new("serve-test"));
        // Band [0, 1]: every request escalates, so the escalate/overlap
        // stages are exercised too.
        let server = Server::builder(screen)
            .escalate(expensive, 0.0, 1.0)
            .workers(1)
            .instrument(registry.clone())
            .start()
            .unwrap();
        let tickets: Vec<Ticket> = fx
            .benign
            .iter()
            .take(6)
            .map(|x| server.submit(x.clone()).unwrap())
            .collect();
        for ticket in tickets {
            ticket.wait().unwrap();
        }

        // Tickets resolve *inside* the escalation pass, a moment before the
        // batch timeline is retained — poll briefly for the retain.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let parsed = loop {
            // The snapshot is text-stable: render → parse → same structure.
            let parsed = ptolemy_obs::json::parse(&server.metrics_json().to_json())
                .expect("snapshot parses");
            let retained = parsed
                .get("timelines")
                .and_then(JsonValue::as_array)
                .map_or(0, <[JsonValue]>::len);
            if retained > 0 {
                break parsed;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no batch timeline retained"
            );
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(
            parsed
                .get("stats")
                .and_then(|s| s.get("completed"))
                .and_then(JsonValue::as_u64),
            Some(6)
        );
        // One queue-wait observation per batched request; the batch stages
        // recorded at least one batch each.
        assert_eq!(stage_hist(&parsed, "serve.queue_wait_ns").count(), 6);
        for name in [
            "serve.batch_form_ns",
            "serve.screen_ns",
            "serve.escalate[0]_ns",
        ] {
            assert!(
                stage_hist(&parsed, name).count() >= 1,
                "{name} recorded nothing"
            );
        }
        let timelines = parsed
            .get("timelines")
            .and_then(JsonValue::as_array)
            .expect("timelines array");
        assert!(!timelines.is_empty());
        // Every retained timeline carries the core stages in order.
        for timeline in timelines {
            let events = timeline
                .get("events")
                .and_then(JsonValue::as_array)
                .expect("events");
            let stages: Vec<&str> = events
                .iter()
                .filter_map(|e| e.get("stage").and_then(JsonValue::as_str))
                .collect();
            assert!(stages.contains(&"queue_wait"), "{stages:?}");
            assert!(stages.contains(&"batch_form"), "{stages:?}");
            assert!(stages.contains(&"screen"), "{stages:?}");
            assert!(stages.contains(&"escalate[0]"), "{stages:?}");
        }
        // The exported latency histogram counts every completion.
        let latency =
            ptolemy_obs::Histogram::from_json(parsed.get("latency_ns").expect("latency_ns"))
                .expect("valid latency histogram");
        assert_eq!(latency.count(), 6);
        let stats = server.shutdown();
        assert_eq!(stats.escalated, 6);
    }

    #[test]
    fn disabled_registry_gates_stage_instrumentation_but_not_stats() {
        let fx = fixture(2);
        let (screen, expensive) = tiered(&fx);
        let registry = Arc::new(Registry::new("serve-gated"));
        registry.set_enabled(false);
        let server = Server::builder(screen)
            .escalate(expensive, 0.0, 1.0)
            .workers(1)
            .instrument(registry.clone())
            .start()
            .unwrap();
        for input in fx.benign.iter().take(4) {
            server.submit(input.clone()).unwrap().wait().unwrap();
        }
        let metrics = server.metrics_json();
        // The handles exist (attached at startup) but the gate kept every
        // stage path silent...
        for name in [
            "serve.queue_wait_ns",
            "serve.batch_form_ns",
            "serve.cache_lookup_ns",
            "serve.screen_ns",
            "serve.escalate[0]_ns",
            "serve.overlap_ns",
        ] {
            assert_eq!(stage_hist(&metrics, name).count(), 0, "{name} not gated");
        }
        assert!(metrics
            .get("timelines")
            .and_then(JsonValue::as_array)
            .expect("timelines array")
            .is_empty());
        // ...while the always-on stats plane kept counting.
        let stats = server.shutdown();
        assert_eq!(stats.completed, 4);
        assert!(stats.p99_latency_ms >= stats.p50_latency_ms);
    }

    #[test]
    fn periodic_snapshot_writes_parseable_metrics_file() {
        let path =
            std::env::temp_dir().join(format!("ptolemy-serve-metrics-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let fx = fixture(2);
        let (screen, _) = tiered(&fx);
        let registry = Arc::new(Registry::new("serve-snapshot"));
        let server = Server::builder(screen)
            .workers(1)
            .instrument(registry)
            // A long interval: this test relies on the guaranteed final
            // snapshot at shutdown, not on timing.
            .snapshot_to(&path, Duration::from_secs(3600))
            .start()
            .unwrap();
        for input in fx.benign.iter().take(3) {
            server.submit(input.clone()).unwrap().wait().unwrap();
        }
        server.shutdown();
        let text = std::fs::read_to_string(&path).expect("final snapshot written");
        let parsed = ptolemy_obs::json::parse(&text).expect("snapshot file parses");
        assert_eq!(
            parsed
                .get("stats")
                .and_then(|s| s.get("completed"))
                .and_then(JsonValue::as_u64),
            Some(3)
        );
        assert!(parsed.get("registry").is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn uninstrumented_and_gated_servers_agree_with_instrumented_verdicts() {
        // The observability plane must be *observational*: attaching a
        // registry (enabled or not) cannot change a single verdict bit.
        let fx = fixture(2);
        let (screen, expensive) = tiered(&fx);
        let build = |registry: Option<Arc<Registry>>| {
            let mut builder = Server::builder(screen.clone())
                .escalate(expensive.clone(), 0.25, 0.75)
                .workers(2);
            if let Some(registry) = registry {
                builder = builder.instrument(registry);
            }
            builder.start().unwrap()
        };
        let gated = Arc::new(Registry::new("gated"));
        gated.set_enabled(false);
        let servers = [
            build(None),
            build(Some(Arc::new(Registry::new("on")))),
            build(Some(gated)),
        ];
        let inputs: Vec<Tensor> = fx
            .benign
            .iter()
            .chain(&fx.adversarial)
            .take(10)
            .cloned()
            .collect();
        for input in &inputs {
            let mut verdicts = servers
                .iter()
                .map(|s| s.submit(input.clone()).unwrap().wait().unwrap());
            let first = verdicts.next().unwrap();
            for other in verdicts {
                assert_eq!(first.tier, other.tier);
                assert_eq!(
                    first.detection.score.to_bits(),
                    other.detection.score.to_bits()
                );
                assert_eq!(first.detection, other.detection);
            }
        }
    }
}
