//! Serving counters and their user-facing snapshot.
//!
//! Queue-to-result latency percentiles are computed from a
//! [`ptolemy_obs::Histogram`] covering **every completed request since
//! startup** — the historical fixed-size recency ring silently forgot history
//! and conflated warm-up with steady state.  The histogram is log-bucketed
//! (bounded memory, ~12.5% relative resolution) and its percentiles are
//! clamped to the exact recorded `[min, max]`, so reported values are
//! monotone in the quantile and can never leave the observed range.

use ptolemy_obs::Histogram;

/// A point-in-time snapshot of the server's counters, taken with
/// [`crate::Server::stats`].
///
/// Every completed request is counted in exactly one of
/// [`ServeStats::screen_served`], [`ServeStats::escalated`] or
/// [`ServeStats::cache_hits`]; the first two count freshly-scored requests per
/// tier, the third counts requests resolved from the path-prefix cache without
/// re-scoring.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests accepted into the submission queue.
    pub submitted: u64,
    /// Requests resolved with a verdict.
    pub completed: u64,
    /// Requests resolved with an engine error.
    pub failed: u64,
    /// Times a worker's screening or escalation pass panicked mid-batch.  The
    /// affected requests resolve as [`crate::ServeError::Canceled`] (counted
    /// under [`ServeStats::failed`]) and the worker keeps draining the queue —
    /// this counter is how operators notice the degradation.
    pub worker_panics: u64,
    /// Requests answered by the tier-1 screening engine alone.
    pub screen_served: u64,
    /// Requests whose tier-1 screening pass ran the **int8 quantized** path
    /// ([`crate::ServerBuilder::quantized_screen`]), whether they were then
    /// screen-served or escalated.  0 in f32 screening mode; equal to the
    /// number of freshly-screened requests (cache hits skip screening) when
    /// the quantized screen is on.
    pub int8_screens: u64,
    /// Requests whose screening score fell in the uncertainty band and were
    /// re-scored by a tier-2 escalation engine (summed over all shards).
    pub escalated: u64,
    /// Requests rejected at submission by admission control
    /// ([`crate::AdmissionPolicy`]): the deadline was predicted unmeetable at
    /// the current queue depth.  Shed submissions never enter the queue and
    /// are **not** counted in [`ServeStats::submitted`].
    pub shed_admission: u64,
    /// Requests dropped at batch formation because their deadline expired
    /// while they waited in the queue.  These entered the queue (counted in
    /// [`ServeStats::submitted`]) and resolve as
    /// [`crate::ServeError::Shed`], counted under [`ServeStats::failed`].
    pub shed_expired: u64,
    /// Requests whose completion latency exceeded their deadline (only
    /// requests submitted with a deadline can miss; sheds are not misses —
    /// they never completed).
    pub deadline_misses: u64,
    /// In-band requests answered by the tier-1 screening verdict because the
    /// server was in degraded mode ([`crate::DegradePolicy`]); a subset of
    /// [`ServeStats::screen_served`], flagged per-request via
    /// [`crate::Served::degraded`].
    pub degraded_served: u64,
    /// Times the server entered degraded (screen-tier-only) mode.
    pub degrade_entered: u64,
    /// Times the server recovered from degraded mode (the queue drained to
    /// the low watermark).  At most [`ServeStats::degrade_entered`]; equal to
    /// it once the server has fully recovered.
    pub degrade_exited: u64,
    /// Escalated requests routed to each tier-2 shard, indexed like the
    /// engine list passed to [`crate::ServerBuilder::escalate_sharded`]
    /// (length 1 for a single [`crate::ServerBuilder::escalate`] engine, empty
    /// without tiered routing).  Sums to [`ServeStats::escalated`].
    pub shard_escalations: Vec<u64>,
    /// Batches whose tier-2 escalation sliver was handed to the worker's
    /// overlap thread, so tier-2 extraction of batch *k* ran concurrently with
    /// tier-1 screening of batch *k+1*.  Only batches with at least one
    /// escalated request count here or in [`ServeStats::serial_batches`].
    pub pipelined_batches: u64,
    /// Batches whose tier-2 sliver ran inline on the worker — pipelining
    /// disabled ([`crate::ServerBuilder::pipeline_escalation`]), or the
    /// overlap thread was still busy with the previous batch (the handoff is
    /// bounded, like core's streaming-extraction overlap worker, so tier-2
    /// work can never pile up unboundedly).
    pub serial_batches: u64,
    /// Requests resolved from the path-prefix result cache.
    pub cache_hits: u64,
    /// Cache lookups that missed (always 0 with the cache disabled).
    pub cache_misses: u64,
    /// Entries restored from the persisted cache file at startup
    /// ([`crate::CacheConfig::persist_path`]); 0 when persistence is off or no
    /// usable file existed.
    pub cache_entries_loaded: u64,
    /// 1 if a persisted cache file existed at startup but was ignored —
    /// corrupt, unreadable, or written under a different engine fingerprint or
    /// prefix depth (see [`crate::CacheConfig`]); 0 otherwise.
    pub cache_load_rejected: u64,
    /// Entries written to the persisted cache file at shutdown; 0 when
    /// persistence is off or the write failed.
    pub cache_entries_persisted: u64,
    /// Batches the workers cut.
    pub batches: u64,
    /// Largest batch cut so far.
    pub max_batch: usize,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Median queue-to-result latency over all completed requests, in
    /// milliseconds (0.0 before the first completion).  Histogram-derived:
    /// ~12.5% bucket resolution with within-bucket rank interpolation,
    /// clamped to the recorded `[min, max]`.
    pub p50_latency_ms: f64,
    /// 90th-percentile queue-to-result latency, in milliseconds (0.0 before
    /// the first completion).  Same derivation as
    /// [`ServeStats::p50_latency_ms`].
    pub p90_latency_ms: f64,
    /// 99th-percentile queue-to-result latency over all completed requests,
    /// in milliseconds (0.0 before the first completion).  Same derivation as
    /// [`ServeStats::p50_latency_ms`].
    pub p99_latency_ms: f64,
}

impl ServeStats {
    /// Fraction of cache lookups that hit (0.0 when the cache is disabled or
    /// nothing was looked up yet).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// The mutable counters behind [`ServeStats`], guarded by the server's stats
/// mutex.  `Clone` exists so snapshots can copy the counters out under the
/// lock and derive percentiles *outside* it — workers take this lock on
/// every request.  (The histogram walk is O(buckets), far cheaper than the
/// historical ring sort, but the discipline of doing no derived work under
/// the lock stays.)
#[derive(Debug, Default, Clone)]
pub(crate) struct StatsInner {
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub worker_panics: u64,
    pub screen_served: u64,
    pub int8_screens: u64,
    pub escalated: u64,
    pub shed_admission: u64,
    pub shed_expired: u64,
    pub deadline_misses: u64,
    pub degraded_served: u64,
    pub degrade_entered: u64,
    pub degrade_exited: u64,
    pub shard_escalations: Vec<u64>,
    pub pipelined_batches: u64,
    pub serial_batches: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_entries_loaded: u64,
    pub cache_load_rejected: u64,
    pub cache_entries_persisted: u64,
    pub batches: u64,
    pub max_batch: usize,
    pub batched_requests: u64,
    latency_ns: Histogram,
}

impl StatsInner {
    /// Fresh counters for a server with `num_shards` tier-2 engines.
    pub fn new(num_shards: usize) -> Self {
        StatsInner {
            shard_escalations: vec![0; num_shards],
            ..StatsInner::default()
        }
    }

    /// Records one queue-to-result latency into the all-time histogram
    /// (bounded memory however many requests complete).
    pub fn record_latency(&mut self, ns: u64) {
        self.latency_ns.record(ns);
    }

    /// A copy of the latency histogram, for export alongside the snapshot.
    pub fn latency_histogram(&self) -> Histogram {
        self.latency_ns.clone()
    }

    pub fn snapshot(&self) -> ServeStats {
        let percentile = |q: f64| -> f64 {
            self.latency_ns
                .percentile(q)
                .map_or(0.0, |ns| ns as f64 / 1e6)
        };
        ServeStats {
            submitted: self.submitted,
            completed: self.completed,
            failed: self.failed,
            worker_panics: self.worker_panics,
            screen_served: self.screen_served,
            int8_screens: self.int8_screens,
            escalated: self.escalated,
            shed_admission: self.shed_admission,
            shed_expired: self.shed_expired,
            deadline_misses: self.deadline_misses,
            degraded_served: self.degraded_served,
            degrade_entered: self.degrade_entered,
            degrade_exited: self.degrade_exited,
            shard_escalations: self.shard_escalations.clone(),
            pipelined_batches: self.pipelined_batches,
            serial_batches: self.serial_batches,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            cache_entries_loaded: self.cache_entries_loaded,
            cache_load_rejected: self.cache_load_rejected,
            cache_entries_persisted: self.cache_entries_persisted,
            batches: self.batches,
            max_batch: self.max_batch,
            mean_batch: if self.batches == 0 {
                0.0
            } else {
                self.batched_requests as f64 / self.batches as f64
            },
            p50_latency_ms: percentile(0.50),
            p90_latency_ms: percentile(0.90),
            p99_latency_ms: percentile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_percentiles_are_monotone_and_bounded_by_recorded_extremes() {
        let mut inner = StatsInner::default();
        assert_eq!(inner.snapshot().p50_latency_ms, 0.0);
        assert_eq!(inner.snapshot().p99_latency_ms, 0.0);
        for i in 1..=100u64 {
            inner.record_latency(i * 1_000_000); // 1..=100 ms
        }
        inner.batches = 4;
        inner.batched_requests = 10;
        inner.max_batch = 5;
        let stats = inner.snapshot();
        // Histogram-derived percentiles: monotone and inside [min, max].
        assert!(stats.p50_latency_ms <= stats.p99_latency_ms);
        for p in [stats.p50_latency_ms, stats.p99_latency_ms] {
            assert!((1.0..=100.0).contains(&p), "{p} outside recorded range");
        }
        // And still resolve the distribution: the median of 1..=100 ms sits
        // near 50 ms (log-bucket resolution is ~12.5%).
        assert!((stats.p50_latency_ms - 50.0).abs() <= 50.0 * 0.15);
        assert!(stats.p99_latency_ms >= 85.0);
        assert_eq!(stats.mean_batch, 2.5);
        assert_eq!(stats.max_batch, 5);
    }

    #[test]
    fn percentiles_are_pinned_on_a_known_latency_sequence() {
        // The estimator contract on a fully-known sequence: record
        // 1..=1000 ms of uniformly-spread latencies, whose true p50/p90/p99
        // are 500/900/990 ms.  Within-bucket rank interpolation must land
        // each within one ≈12.5% log bucket of the truth (the old midpoint
        // estimator only guaranteed the bucket's centre), stay mutually
        // monotone, and stay inside the exact recorded extremes.
        let mut inner = StatsInner::default();
        for i in 1..=1_000u64 {
            inner.record_latency(i * 1_000_000);
        }
        let stats = inner.snapshot();
        assert!(
            (stats.p50_latency_ms - 500.0).abs() <= 500.0 * 0.125,
            "p50 drifted: {}",
            stats.p50_latency_ms
        );
        assert!(
            (stats.p90_latency_ms - 900.0).abs() <= 900.0 * 0.125,
            "p90 drifted: {}",
            stats.p90_latency_ms
        );
        assert!(
            (stats.p99_latency_ms - 990.0).abs() <= 990.0 * 0.125,
            "p99 drifted: {}",
            stats.p99_latency_ms
        );
        assert!(stats.p50_latency_ms <= stats.p90_latency_ms);
        assert!(stats.p90_latency_ms <= stats.p99_latency_ms);
        assert!((1.0..=1_000.0).contains(&stats.p99_latency_ms));
        // Evenly-spread bucket occupants interpolate to within 1% of the
        // truth — an order of magnitude tighter than the bucket resolution.
        assert!((stats.p50_latency_ms - 500.0).abs() <= 5.0);
        assert!((stats.p90_latency_ms - 900.0).abs() <= 9.0);
        assert!((stats.p99_latency_ms - 990.0).abs() <= 9.9);
    }

    #[test]
    fn percentiles_cover_full_history_not_a_recency_window() {
        // The historical 4096-entry ring forgot the first regime entirely:
        // after 4096 slow completions the fast warm-up vanished and p50
        // jumped to the slow regime.  The histogram keeps both.
        let mut inner = StatsInner::default();
        for _ in 0..4096 {
            inner.record_latency(1_000_000); // 1 ms regime
        }
        for _ in 0..4096 {
            inner.record_latency(9_000_000); // 9 ms regime
        }
        let stats = inner.snapshot();
        // Half the history is 1 ms, so the median stays in the fast regime
        // (the old ring reported 9.0 here) while the tail sees the slow one.
        assert!(stats.p50_latency_ms <= 1.2, "{}", stats.p50_latency_ms);
        assert!(stats.p99_latency_ms >= 8.0, "{}", stats.p99_latency_ms);
        assert!(stats.p99_latency_ms <= 9.0, "{}", stats.p99_latency_ms);
    }

    #[test]
    fn latency_histogram_is_exported_with_exact_extremes() {
        let mut inner = StatsInner::default();
        inner.record_latency(250);
        inner.record_latency(750);
        let hist = inner.latency_histogram();
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.min(), Some(250));
        assert_eq!(hist.max(), Some(750));
    }

    #[test]
    fn cache_hit_rate_handles_empty_and_mixed() {
        let stats = ServeStats::default();
        assert_eq!(stats.cache_hit_rate(), 0.0);
        let stats = ServeStats {
            cache_hits: 3,
            cache_misses: 1,
            ..ServeStats::default()
        };
        assert!((stats.cache_hit_rate() - 0.75).abs() < 1e-12);
    }
}
