//! Overload-protection policies: deadline admission control and
//! mixed-criticality degradation.
//!
//! Both policies are opt-in builder knobs
//! ([`crate::ServerBuilder::admission`],
//! [`crate::ServerBuilder::degradation`]) and both are inert under zero
//! overload — the workspace parity tests pin that a server with them enabled
//! serves bit-for-bit the same verdicts as one without, as long as deadlines
//! are loose and the queue stays below the degradation watermark.

/// Deadline admission control for [`crate::Server::submit_with_deadline`].
///
/// At submission the server estimates the request's completion time from the
/// current queue depth and an exponential moving average of per-request
/// service time; if the estimate (scaled by [`AdmissionPolicy::headroom`])
/// lands past the request's deadline, the submission is rejected with
/// [`crate::ServeError::Shed`] instead of being queued — the request was
/// going to miss anyway, and shedding it early preserves the deadlines of
/// everything behind it.  Submissions **without** a deadline are never shed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Safety factor on the estimated completion time (default 1.0).  Values
    /// above 1.0 shed earlier (pessimistic: protects p99 at the cost of
    /// rejecting some requests that would have made it); values below 1.0
    /// admit optimistically.
    pub headroom: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy { headroom: 1.0 }
    }
}

impl AdmissionPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Rejects a non-finite or non-positive headroom.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if !self.headroom.is_finite() || self.headroom <= 0.0 {
            return Err(format!(
                "admission headroom must be finite and > 0, got {}",
                self.headroom
            ));
        }
        Ok(())
    }
}

/// Mixed-criticality degradation for sustained overload — the serving analog
/// of a real-time system's LMode→HMode switch.
///
/// While the queue depth sits at or above `high_watermark × queue_capacity`,
/// the server enters **degraded mode**: in-band requests that would escalate
/// to the expensive tier-2 engine are answered by the tier-1 screening
/// verdict instead (flagged via [`crate::Served::degraded`], and not cached —
/// a degraded answer must never masquerade as a full-pipeline verdict).
/// Confident screen verdicts and cache hits are unaffected: degradation sheds
/// tier-2 *work*, not tier-1 correctness.  Once the queue drains to
/// `low_watermark × queue_capacity` or below, the server recovers
/// automatically; the hysteresis gap keeps it from flapping at the boundary.
/// Entries/exits are counted in [`crate::ServeStats::degrade_entered`] /
/// [`crate::ServeStats::degrade_exited`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradePolicy {
    /// Queue fill fraction (of the queue capacity) at or above which the
    /// server enters degraded mode.  Default 0.75.
    pub high_watermark: f64,
    /// Queue fill fraction at or below which a degraded server recovers.
    /// Default 0.25.  Must not exceed `high_watermark`.
    pub low_watermark: f64,
}

impl Default for DegradePolicy {
    fn default() -> DegradePolicy {
        DegradePolicy {
            high_watermark: 0.75,
            low_watermark: 0.25,
        }
    }
}

impl DegradePolicy {
    /// Validates the watermark pair.
    ///
    /// # Errors
    ///
    /// Rejects non-finite watermarks, watermarks outside `[0, 1]`, and a low
    /// watermark above the high one.
    pub(crate) fn validate(&self) -> Result<(), String> {
        for (name, value) in [
            ("high_watermark", self.high_watermark),
            ("low_watermark", self.low_watermark),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(format!("degradation {name} must be in [0, 1], got {value}"));
            }
        }
        if self.low_watermark > self.high_watermark {
            return Err(format!(
                "degradation low_watermark ({}) must not exceed high_watermark ({})",
                self.low_watermark, self.high_watermark
            ));
        }
        Ok(())
    }

    /// The queue depths the watermarks translate to for `capacity`: enter
    /// degraded mode at `>= enter_at`, recover at `<= exit_at`.  `enter_at`
    /// is at least 1 (a high watermark of 0 still requires a non-empty queue
    /// — with an empty queue there is nothing to degrade for) and `exit_at`
    /// is strictly below `enter_at` so a single queue depth can never satisfy
    /// both transitions at once.
    pub(crate) fn thresholds(&self, capacity: usize) -> (usize, usize) {
        let enter_at = ((self.high_watermark * capacity as f64).ceil() as usize).max(1);
        let exit_at = ((self.low_watermark * capacity as f64).floor() as usize).min(enter_at - 1);
        (enter_at, exit_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_policy_validates_headroom() {
        assert!(AdmissionPolicy::default().validate().is_ok());
        assert!(AdmissionPolicy { headroom: 2.5 }.validate().is_ok());
        assert!(AdmissionPolicy { headroom: 0.0 }.validate().is_err());
        assert!(AdmissionPolicy { headroom: f64::NAN }.validate().is_err());
    }

    #[test]
    fn degrade_policy_validates_watermarks() {
        assert!(DegradePolicy::default().validate().is_ok());
        assert!(DegradePolicy {
            high_watermark: 1.5,
            low_watermark: 0.1
        }
        .validate()
        .is_err());
        assert!(DegradePolicy {
            high_watermark: 0.2,
            low_watermark: 0.8
        }
        .validate()
        .is_err());
    }

    #[test]
    fn thresholds_keep_enter_above_exit() {
        let policy = DegradePolicy::default();
        let (enter, exit) = policy.thresholds(64);
        assert_eq!(enter, 48);
        assert_eq!(exit, 16);
        // Degenerate watermarks still leave a gap.
        for capacity in [1usize, 2, 7, 64] {
            for (high, low) in [(0.0, 0.0), (1.0, 1.0), (0.5, 0.5)] {
                let (enter, exit) = DegradePolicy {
                    high_watermark: high,
                    low_watermark: low,
                }
                .thresholds(capacity);
                assert!(enter >= 1);
                assert!(exit < enter, "cap {capacity} wm ({high},{low})");
            }
        }
    }
}
