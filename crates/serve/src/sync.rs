//! Poison-tolerant lock and condvar helpers shared across the serving runtime.
//!
//! A worker thread that panics mid-batch poisons every mutex it held.  The
//! server's recovery story (see `worker_loop`: `catch_unwind` + ticket
//! cancellation + the `worker_panics` counter) only works if the surviving
//! threads — submitters blocked on backpressure, other workers, `shutdown` —
//! can still take those locks.  The queue/stats/cache state they protect is
//! kept consistent by construction (every critical section either completes
//! its update or never starts it; tickets a dead worker abandoned are
//! cancelled), so recovering the guard with `into_inner` is sound here and
//! panic propagation would only turn one failed request into a wedged server.
//!
//! These helpers are the **only** place the workspace recovers poisoned
//! guards; everything else goes through them (enforced by convention and kept
//! honest by the `panic-in-worker` lint, which rejects bare `unwrap`).

use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// Poison-tolerant lock: a panicking worker must not wedge every submitter.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Poison-tolerant `Condvar::wait`: re-acquires the guard even if another
/// thread panicked while holding the mutex.
pub(crate) fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Poison-tolerant `Condvar::wait_timeout`; the caller still observes whether
/// the wait timed out.
pub(crate) fn wait_timeout<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    #[test]
    fn lock_recovers_from_poison() {
        let mutex = Arc::new(Mutex::new(7u32));
        let clone = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(mutex.is_poisoned());
        assert_eq!(*lock(&mutex), 7);
    }

    #[test]
    fn wait_timeout_recovers_from_poison() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let clone = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let _guard = clone.0.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        let (mutex, condvar) = &*pair;
        let guard = lock(mutex);
        let (guard, result) = wait_timeout(condvar, guard, Duration::from_millis(1));
        assert!(result.timed_out());
        assert!(!*guard);
    }
}
