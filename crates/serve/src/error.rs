use std::fmt;

use ptolemy_core::CoreError;

/// Why the server shed a request instead of serving it
/// ([`ServeError::Shed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Admission control ([`crate::AdmissionPolicy`]) predicted the deadline
    /// could not be met at the current queue depth, so the request was
    /// rejected at submission — before consuming a queue slot.
    Admission,
    /// The deadline expired while the request waited in the queue; the worker
    /// dropped it at batch formation instead of wasting inference on an
    /// answer nobody can use.
    DeadlineExpired,
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedReason::Admission => write!(
                f,
                "admission control predicted the deadline cannot be met at the current load"
            ),
            ShedReason::DeadlineExpired => {
                write!(f, "the deadline expired while the request was queued")
            }
        }
    }
}

/// Error type of the serving runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The tier engines handed to [`crate::Server`] cannot serve together:
    /// different class counts, a tier that cannot produce verdicts, or — under
    /// sharded escalation ([`crate::ServerBuilder::escalate_sharded`]) —
    /// shards that bind different programs/thresholds/network instances or
    /// fail to own every class exactly once.  Carries the build-time
    /// fingerprints of both tiers so deployment logs identify exactly which
    /// artifacts were mispaired.
    TierMismatch {
        /// Fingerprint of the screening (tier-1) engine.
        screen: String,
        /// Fingerprint of the escalation (tier-2) engine.
        escalate: String,
        /// Why the pairing was rejected.
        reason: String,
    },
    /// A server configuration knob was rejected at construction.
    InvalidConfig(String),
    /// The bounded submission queue is full ([`crate::Server::try_submit`]).
    QueueFull,
    /// The request was shed by overload protection instead of served: either
    /// rejected at submission by admission control or dropped in the queue
    /// when its deadline expired (see [`ShedReason`]).  Counted in
    /// [`crate::ServeStats::shed_admission`] /
    /// [`crate::ServeStats::shed_expired`].
    Shed(ShedReason),
    /// The server no longer accepts submissions.
    ShuttingDown,
    /// The request was abandoned without a verdict (a worker panicked while
    /// serving it); resubmit to retry.
    Canceled(String),
    /// The detection engine failed while serving this request.
    Engine(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::TierMismatch {
                screen,
                escalate,
                reason,
            } => write!(
                f,
                "mismatched tier engines (screen '{screen}', escalation '{escalate}'): {reason}"
            ),
            ServeError::InvalidConfig(msg) => write!(f, "invalid server configuration: {msg}"),
            ServeError::QueueFull => write!(f, "submission queue is full"),
            ServeError::Shed(reason) => write!(f, "request shed: {reason}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Canceled(reason) => write!(f, "request canceled: {reason}"),
            ServeError::Engine(e) => write!(f, "engine error while serving: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Engine(e)
    }
}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = ServeError::TierMismatch {
            screen: "fw|ab0.05".into(),
            escalate: "bw|cu0.50".into(),
            reason: "class counts differ".into(),
        };
        assert!(e.to_string().contains("fw|ab0.05"));
        assert!(e.to_string().contains("class counts differ"));
        assert!(ServeError::QueueFull.to_string().contains("full"));
        assert!(ServeError::Shed(ShedReason::Admission)
            .to_string()
            .contains("admission"));
        assert!(ServeError::Shed(ShedReason::DeadlineExpired)
            .to_string()
            .contains("deadline expired"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
        assert!(ServeError::Canceled("worker panicked".into())
            .to_string()
            .contains("canceled"));
        let e: ServeError = CoreError::InvalidInput("x".into()).into();
        assert!(matches!(e, ServeError::Engine(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServeError::QueueFull).is_none());
        assert!(!ServeError::InvalidConfig("w".into()).to_string().is_empty());
    }
}
