//! The accelerator serving backend: plugs the hardware model into
//! [`ptolemy_core::DetectionEngine`].
//!
//! Where [`ptolemy_core::SoftwareBackend`] prices batches with algorithm-level
//! operation counts, [`AccelBackend`] routes the engine's
//! [`ptolemy_core::DetectionProgram`] through the Ptolemy compiler once at bind
//! time (binary ISA + static task schedule) and then prices every served batch
//! on the cycle/energy model — so latency-hiding effects such as forward
//! extraction's layer-level pipelining show up in serving estimates exactly as
//! they do in the paper's figures.

use ptolemy_compiler::{CompiledProgram, Compiler, OptimizationFlags};
use ptolemy_core::engine::{BackendEstimate, DetectionBackend};
use ptolemy_core::{CoreError, DetectionProgram};
use ptolemy_nn::Network;

use crate::{ExecutionReport, HardwareConfig, Simulator};

/// Serving backend backed by the Ptolemy hardware model.
///
/// Construct it, hand it to [`ptolemy_core::DetectionEngineBuilder::backend`],
/// and every [`ptolemy_core::DetectionEngine::detect_batch_with_estimate`] call
/// reports modelled latency/energy for the batch alongside the verdicts.
#[derive(Debug, Clone)]
pub struct AccelBackend {
    config: HardwareConfig,
    flags: OptimizationFlags,
    compiled: Option<CompiledProgram>,
}

impl AccelBackend {
    /// Creates a backend for a hardware configuration with all compiler
    /// optimisations enabled.
    pub fn new(config: HardwareConfig) -> Self {
        Self::with_flags(config, OptimizationFlags::default())
    }

    /// Creates a backend with explicit compiler optimisation flags (used by the
    /// ablation harnesses).
    pub fn with_flags(config: HardwareConfig, flags: OptimizationFlags) -> Self {
        AccelBackend {
            config,
            flags,
            compiled: None,
        }
    }

    /// The same backend re-priced for 8-bit operands (the bit-serial PE
    /// array streams half the beats per MAC, so both the cycle and energy
    /// models shrink; see [`HardwareConfig::macs_per_cycle`]).
    ///
    /// Hand this to the *screening* engine of a
    /// `ptolemy-serve` quantized-screen deployment so
    /// [`ptolemy_core::DetectionEngine::detect_batch_with_estimate`] and the
    /// adaptive batch former price the int8 pass instead of the f32 one.
    /// The compiled schedule is unchanged — quantization alters operand
    /// width, not the task graph.
    pub fn with_int8_operands(mut self) -> Self {
        self.config = self.config.with_precision(8);
        self
    }

    /// The hardware configuration this backend prices batches on.
    pub fn config(&self) -> &HardwareConfig {
        &self.config
    }

    /// The compiled program, once the backend has been bound to an engine.
    pub fn compiled(&self) -> Option<&CompiledProgram> {
        self.compiled.as_ref()
    }

    /// Simulates one detection-augmented inference at the given path density
    /// (the raw [`ExecutionReport`] behind the per-batch estimates).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Backend`] if the backend was never bound or the
    /// hardware model rejects the program.
    pub fn execution_report(
        &self,
        network: &Network,
        density: f32,
    ) -> Result<ExecutionReport, CoreError> {
        let compiled = self
            .compiled
            .as_ref()
            .ok_or_else(|| CoreError::Backend("accel backend was not bound to an engine".into()))?;
        let simulator =
            Simulator::new(self.config).map_err(|e| CoreError::Backend(e.to_string()))?;
        simulator
            .simulate(network, compiled, density)
            .map_err(|e| CoreError::Backend(e.to_string()))
    }
}

impl DetectionBackend for AccelBackend {
    fn name(&self) -> &'static str {
        "accel"
    }

    fn bind(&mut self, network: &Network, program: &DetectionProgram) -> Result<(), CoreError> {
        // Validate the configuration eagerly so a bad array size fails at
        // engine build, not on the first served batch.
        Simulator::new(self.config).map_err(|e| CoreError::Backend(e.to_string()))?;
        let compiled = Compiler::new(self.flags)
            .compile(network, program)
            .map_err(|e| CoreError::Backend(e.to_string()))?;
        self.compiled = Some(compiled);
        Ok(())
    }

    fn estimate_batch(
        &self,
        network: &Network,
        _program: &DetectionProgram,
        batch_size: usize,
        mean_density: f32,
    ) -> Result<BackendEstimate, CoreError> {
        let report = self.execution_report(network, mean_density)?;
        // The accelerator serves one input at a time (per-sample systolic
        // execution), so batch latency/energy scale linearly with batch size;
        // the relative factors are per-input properties of the schedule.
        let batch = batch_size as f64;
        Ok(BackendEstimate {
            backend: self.name(),
            batch_size,
            software: None,
            latency_ms: Some(self.config.cycles_to_ms(report.total_cycles) * batch),
            energy_pj: Some(report.total_energy_pj * batch),
            latency_factor: Some(report.latency_factor()),
            energy_factor: Some(report.energy_factor()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_core::variants;
    use ptolemy_nn::zoo;
    use ptolemy_tensor::Rng64;

    #[test]
    fn bind_then_estimate_yields_nonzero_latency_and_energy() {
        let network = zoo::lenet(3, 4, &mut Rng64::new(7)).unwrap();
        let program = variants::fw_ab(&network, 0.1).unwrap();
        let mut backend = AccelBackend::new(HardwareConfig::default());
        assert!(backend.compiled().is_none());
        backend.bind(&network, &program).unwrap();
        assert!(backend.compiled().is_some());

        let estimate = backend
            .estimate_batch(&network, &program, 16, 0.05)
            .unwrap();
        assert_eq!(estimate.backend, "accel");
        assert_eq!(estimate.batch_size, 16);
        assert!(estimate.latency_ms.unwrap() > 0.0);
        assert!(estimate.energy_pj.unwrap() > 0.0);
        assert!(estimate.latency_factor.unwrap() >= 1.0);
        assert!(estimate.software.is_none());

        // Batch cost scales linearly with batch size.
        let double = backend
            .estimate_batch(&network, &program, 32, 0.05)
            .unwrap();
        let ratio = double.latency_ms.unwrap() / estimate.latency_ms.unwrap();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn int8_operands_price_below_16_bit_on_the_same_schedule() {
        let network = zoo::lenet(3, 4, &mut Rng64::new(7)).unwrap();
        let program = variants::fw_ab(&network, 0.1).unwrap();
        let mut wide = AccelBackend::new(HardwareConfig::default());
        wide.bind(&network, &program).unwrap();
        let mut narrow = AccelBackend::new(HardwareConfig::default()).with_int8_operands();
        narrow.bind(&network, &program).unwrap();
        assert_eq!(narrow.config().precision_bits, 8);

        let wide_est = wide.estimate_batch(&network, &program, 8, 0.05).unwrap();
        let narrow_est = narrow.estimate_batch(&network, &program, 8, 0.05).unwrap();
        // Bit-serial streaming: half the beats per MAC, half the bytes per
        // value, a third of the MAC energy — the int8 screen must come out
        // strictly cheaper on both axes.
        assert!(narrow_est.latency_ms.unwrap() < wide_est.latency_ms.unwrap());
        assert!(narrow_est.energy_pj.unwrap() < wide_est.energy_pj.unwrap());

        // Re-pricing after bind keeps the compiled schedule (quantization
        // changes operand width, not the task graph).
        let repriced = wide.clone().with_int8_operands();
        assert!(repriced.compiled().is_some());
        let repriced_est = repriced
            .estimate_batch(&network, &program, 8, 0.05)
            .unwrap();
        assert_eq!(
            repriced_est.latency_ms.unwrap().to_bits(),
            narrow_est.latency_ms.unwrap().to_bits()
        );
    }

    #[test]
    fn unbound_backend_reports_an_error() {
        let network = zoo::lenet(3, 4, &mut Rng64::new(7)).unwrap();
        let program = variants::fw_ab(&network, 0.1).unwrap();
        let backend = AccelBackend::new(HardwareConfig::default());
        assert!(matches!(
            backend.estimate_batch(&network, &program, 1, 0.05),
            Err(CoreError::Backend(_))
        ));
    }
}
