//! Hardware configuration and the per-operation energy table.

use crate::{AccelError, Result};

/// Per-operation energy constants in picojoules.
///
/// The values are representative published numbers for a ~16 nm-class process
/// (e.g. Horowitz, ISSCC'14 keynote scaling) rather than the paper's 15 nm synthesis
/// results; only the ratios matter for the relative overheads every figure reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy of one 16-bit MAC.
    pub mac_16b_pj: f64,
    /// Energy of one 8-bit MAC.
    pub mac_8b_pj: f64,
    /// Energy per byte of on-chip SRAM access.
    pub sram_byte_pj: f64,
    /// Energy per byte of off-chip DRAM access.
    pub dram_byte_pj: f64,
    /// Energy of one comparison (threshold compare or sort compare-exchange).
    pub compare_pj: f64,
    /// Energy of one MCU operation (dispatch or random-forest node visit).
    pub mcu_op_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            mac_16b_pj: 0.3,
            mac_8b_pj: 0.1,
            sram_byte_pj: 1.2,
            dram_byte_pj: 20.0,
            compare_pj: 0.05,
            mcu_op_pj: 4.0,
        }
    }
}

/// Configuration of the Ptolemy-augmented accelerator.
///
/// The default matches the paper's evaluation platform: a 20×20 MAC array at
/// 250 MHz with 1.5 MB of accelerator SRAM, a 32 KB partial-sum/mask SRAM, a 64 KB
/// path-constructor SRAM, two 16-element sort units and a 16-way merge tree, backed
/// by LPDDR3-class DRAM bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareConfig {
    /// Systolic array rows.
    pub array_rows: usize,
    /// Systolic array columns.
    pub array_cols: usize,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// MAC precision in bits (16 or 8).
    pub precision_bits: u32,
    /// Accelerator SRAM capacity in KB.
    pub accel_sram_kb: usize,
    /// Partial-sum / mask SRAM capacity in KB (the Ptolemy augmentation).
    pub psum_sram_kb: usize,
    /// Path-constructor SRAM capacity in KB.
    pub path_sram_kb: usize,
    /// Number of parallel sort units in the path constructor.
    pub sort_units: usize,
    /// Elements each sorting network handles per pass.
    pub sort_unit_width: usize,
    /// Number of partially-sorted sequences the merge tree combines at once.
    pub merge_tree_length: usize,
    /// Sustained DRAM bandwidth in bytes per cycle (four LPDDR3-1600 channels at
    /// 250 MHz ≈ 51 B/cycle).
    pub dram_bytes_per_cycle: f64,
    /// Per-operation energy constants.
    pub energy: EnergyModel,
}

impl Default for HardwareConfig {
    fn default() -> Self {
        HardwareConfig {
            array_rows: 20,
            array_cols: 20,
            clock_mhz: 250.0,
            precision_bits: 16,
            accel_sram_kb: 1536,
            psum_sram_kb: 32,
            path_sram_kb: 64,
            sort_units: 2,
            sort_unit_width: 16,
            merge_tree_length: 16,
            dram_bytes_per_cycle: 51.2,
            energy: EnergyModel::default(),
        }
    }
}

impl HardwareConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] for zero-sized structures or
    /// unsupported precisions.
    pub fn validate(&self) -> Result<()> {
        if self.array_rows == 0 || self.array_cols == 0 {
            return Err(AccelError::InvalidConfig(
                "MAC array must be non-empty".into(),
            ));
        }
        if self.clock_mhz <= 0.0 || self.dram_bytes_per_cycle <= 0.0 {
            return Err(AccelError::InvalidConfig(
                "clock and DRAM bandwidth must be positive".into(),
            ));
        }
        if self.sort_units == 0 || self.sort_unit_width < 2 || self.merge_tree_length < 2 {
            return Err(AccelError::InvalidConfig(
                "path constructor needs at least one sort unit, width ≥ 2 and merge length ≥ 2"
                    .into(),
            ));
        }
        if self.precision_bits != 16 && self.precision_bits != 8 {
            return Err(AccelError::InvalidConfig(format!(
                "unsupported precision {} (16 or 8 bits)",
                self.precision_bits
            )));
        }
        Ok(())
    }

    /// MACs the array completes per cycle at the configured precision.
    ///
    /// The PE array streams operand bits serially, so throughput scales
    /// inversely with operand width: at the baseline 16-bit precision each PE
    /// finishes one MAC per cycle, while 8-bit operands take half the beats
    /// and double the array's effective MAC rate.  This is what lets
    /// [`crate::AccelBackend`] price an int8 quantized screening pass — the
    /// same schedule, re-costed for the narrow operands.
    pub fn macs_per_cycle(&self) -> u64 {
        (self.array_rows * self.array_cols) as u64 * (16 / self.precision_bits.max(1)) as u64
    }

    /// Energy of one MAC at the configured precision.
    pub fn mac_energy_pj(&self) -> f64 {
        if self.precision_bits == 8 {
            self.energy.mac_8b_pj
        } else {
            self.energy.mac_16b_pj
        }
    }

    /// Bytes per activation / partial sum at the configured precision.
    pub fn value_bytes(&self) -> u64 {
        (self.precision_bits / 8) as u64
    }

    /// Converts a cycle count to milliseconds at the configured clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1e3)
    }

    /// The 8-bit variant of this configuration (Sec. VII-G precision study).
    pub fn with_precision(mut self, bits: u32) -> Self {
        self.precision_bits = bits;
        self
    }

    /// Variant with a different MAC array size (Sec. VII-G scaling study).
    pub fn with_array(mut self, rows: usize, cols: usize) -> Self {
        self.array_rows = rows;
        self.array_cols = cols;
        self
    }

    /// Variant with different path-constructor provisioning (Fig. 18 sweeps).
    pub fn with_path_constructor(mut self, sort_units: usize, merge_tree_length: usize) -> Self {
        self.sort_units = sort_units;
        self.merge_tree_length = merge_tree_length;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_platform() {
        let cfg = HardwareConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.array_rows, 20);
        assert_eq!(cfg.array_cols, 20);
        assert_eq!(cfg.clock_mhz, 250.0);
        assert_eq!(cfg.macs_per_cycle(), 400);
        assert_eq!(cfg.value_bytes(), 2);
        // Bit-serial operand streaming: 8-bit operands take half the beats,
        // so the same array sustains twice the MAC rate (and 1-byte values).
        assert_eq!(cfg.with_precision(8).macs_per_cycle(), 800);
        assert_eq!(cfg.with_precision(8).value_bytes(), 1);
        assert!(cfg.mac_energy_pj() > cfg.with_precision(8).mac_energy_pj());
        assert!((cfg.cycles_to_ms(250_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(HardwareConfig {
            array_rows: 0,
            ..HardwareConfig::default()
        }
        .validate()
        .is_err());
        assert!(HardwareConfig {
            clock_mhz: 0.0,
            ..HardwareConfig::default()
        }
        .validate()
        .is_err());
        assert!(HardwareConfig {
            sort_units: 0,
            ..HardwareConfig::default()
        }
        .validate()
        .is_err());
        assert!(HardwareConfig {
            precision_bits: 32,
            ..HardwareConfig::default()
        }
        .validate()
        .is_err());
        assert!(HardwareConfig {
            merge_tree_length: 1,
            ..HardwareConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn builder_style_variants() {
        let cfg = HardwareConfig::default()
            .with_array(32, 32)
            .with_precision(8)
            .with_path_constructor(8, 32);
        cfg.validate().unwrap();
        assert_eq!(cfg.macs_per_cycle(), 2048); // 32×32 PEs × 2 (8-bit operands)
        assert_eq!(cfg.precision_bits, 8);
        assert_eq!(cfg.sort_units, 8);
        assert_eq!(cfg.merge_tree_length, 32);
    }
}
