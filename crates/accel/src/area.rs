//! Area model (paper Sec. VII-A).
//!
//! The paper reports, for the 20×20 / 1.5 MB baseline in a 15 nm library, a total
//! Ptolemy area overhead of 5.2 % (0.08 mm²): 3.9 % additional SRAM, 0.4 % MAC
//! augmentation and 0.9 % other logic.  This module reproduces those numbers with a
//! simple component model (area per KB of SRAM, per MAC, per sort element) so that
//! the overhead scales when the configuration changes (e.g. the 8-bit or 32×32
//! studies in Sec. VII-G, or the Fig. 18 path-constructor sweeps).

use crate::{HardwareConfig, Result};

/// Area breakdown in mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Baseline accelerator area (MAC array + accelerator SRAM + control).
    pub baseline_mm2: f64,
    /// Extra SRAM added by Ptolemy (partial-sum/mask SRAM + path-constructor SRAM).
    pub extra_sram_mm2: f64,
    /// MAC-unit augmentation (threshold compare, mask mux).
    pub mac_augmentation_mm2: f64,
    /// Path-constructor logic (sort units, merge tree, accumulator, mask generator).
    pub path_constructor_mm2: f64,
    /// Other glue logic.
    pub other_mm2: f64,
}

impl AreaReport {
    /// Total Ptolemy-added area.
    pub fn added_mm2(&self) -> f64 {
        self.extra_sram_mm2 + self.mac_augmentation_mm2 + self.path_constructor_mm2 + self.other_mm2
    }

    /// Ptolemy area overhead relative to the baseline accelerator, in percent.
    pub fn overhead_percent(&self) -> f64 {
        100.0 * self.added_mm2() / self.baseline_mm2
    }
}

// Component constants calibrated so the default configuration reproduces the
// paper's 5.2 % / 0.08 mm² breakdown (15 nm-class density).
const SRAM_MM2_PER_KB: f64 = 0.000_65;
const MAC_16B_MM2: f64 = 0.001_43;
const MAC_8B_MM2: f64 = 0.000_55;
const MAC_AUGMENT_FRACTION: f64 = 0.011;
const SORT_ELEMENT_MM2: f64 = 0.000_22;
const MERGE_ELEMENT_MM2: f64 = 0.000_12;
const CONTROL_MM2: f64 = 0.08;
const OTHER_LOGIC_MM2: f64 = 0.013;

/// Computes the area breakdown for a hardware configuration.
///
/// # Errors
///
/// Returns [`crate::AccelError::InvalidConfig`] for invalid configurations.
pub fn area_report(config: &HardwareConfig) -> Result<AreaReport> {
    config.validate()?;
    let mac_area = if config.precision_bits == 8 {
        MAC_8B_MM2
    } else {
        MAC_16B_MM2
    };
    let macs = (config.array_rows * config.array_cols) as f64;
    let baseline_mm2 =
        macs * mac_area + config.accel_sram_kb as f64 * SRAM_MM2_PER_KB + CONTROL_MM2;
    let extra_sram_mm2 = (config.psum_sram_kb + config.path_sram_kb) as f64 * SRAM_MM2_PER_KB;
    let mac_augmentation_mm2 = macs * mac_area * MAC_AUGMENT_FRACTION;
    let path_constructor_mm2 =
        config.sort_units as f64 * config.sort_unit_width as f64 * SORT_ELEMENT_MM2
            + config.merge_tree_length as f64 * MERGE_ELEMENT_MM2;
    Ok(AreaReport {
        baseline_mm2,
        extra_sram_mm2,
        mac_augmentation_mm2,
        path_constructor_mm2,
        other_mm2: OTHER_LOGIC_MM2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_overhead_matches_paper_ballpark() {
        let report = area_report(&HardwareConfig::default()).unwrap();
        // Paper: 5.2 % total, of which 3.9 % is SRAM; added area ≈ 0.08 mm².
        let overhead = report.overhead_percent();
        assert!(
            (4.5..6.0).contains(&overhead),
            "total overhead {overhead:.2}% outside the expected band"
        );
        let sram_pct = 100.0 * report.extra_sram_mm2 / report.baseline_mm2;
        assert!(
            (3.0..4.5).contains(&sram_pct),
            "SRAM overhead {sram_pct:.2}%"
        );
        assert!((0.05..0.12).contains(&report.added_mm2()));
        // SRAM dominates the added area, as in the paper.
        assert!(report.extra_sram_mm2 > report.path_constructor_mm2);
        assert!(report.extra_sram_mm2 > report.mac_augmentation_mm2);
    }

    #[test]
    fn eight_bit_design_has_slightly_higher_relative_overhead() {
        // Paper Sec. VII-G: moving to 8-bit MACs raises the overhead from 5.2 % to
        // 5.5 % because the baseline shrinks while the SRAM stays.
        let base = area_report(&HardwareConfig::default()).unwrap();
        let eight = area_report(&HardwareConfig::default().with_precision(8)).unwrap();
        assert!(eight.overhead_percent() > base.overhead_percent());
    }

    #[test]
    fn larger_array_increases_relative_overhead() {
        // Paper Sec. VII-G: a 32×32 array raises the overhead to 6.4 % because the
        // MAC augmentation grows with the array.
        let base = area_report(&HardwareConfig::default()).unwrap();
        let big = area_report(&HardwareConfig::default().with_array(32, 32)).unwrap();
        assert!(big.mac_augmentation_mm2 > base.mac_augmentation_mm2);
    }

    #[test]
    fn more_sort_units_cost_area() {
        let base = area_report(&HardwareConfig::default()).unwrap();
        let big = area_report(&HardwareConfig::default().with_path_constructor(16, 16)).unwrap();
        assert!(big.path_constructor_mm2 > base.path_constructor_mm2);
        assert!(area_report(&HardwareConfig {
            array_rows: 0,
            ..HardwareConfig::default()
        })
        .is_err());
    }
}
