//! # ptolemy-accel
//!
//! A cycle- and energy-accounted model of the Ptolemy hardware (paper Sec. V):
//!
//! * a TPU-like systolic MAC array (default 20×20 at 250 MHz, 16-bit fixed point)
//!   with the Ptolemy MAC augmentation (threshold compare + mask write, partial-sum
//!   store path);
//! * the **path constructor** — parallel sorting networks feeding a merge tree, an
//!   accumulator, the mask generator and the bit-parallel similarity unit;
//! * double-buffered SRAMs and an off-chip DRAM channel model;
//! * the MCU controller that dispatches instructions and runs the random forest.
//!
//! The simulator executes the task schedule produced by `ptolemy-compiler`,
//! assigning each task to its hardware unit and honouring the dependence edges, so
//! the latency-hiding effect of forward extraction (layer-level pipelining) falls
//! out of the schedule rather than being assumed.  Energy is accumulated per
//! operation from a published-constant energy table.  Absolute numbers are therefore
//! representative rather than sign-off quality; every figure harness reports
//! *relative* latency/energy against plain inference, exactly like the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod backend;
mod config;
mod report;
mod sim;

pub use area::{area_report, AreaReport};
pub use backend::AccelBackend;
pub use config::{EnergyModel, HardwareConfig};
pub use report::{ExecutionReport, TaskTiming};
pub use sim::{dram_space_report, DramSpaceReport, Simulator};

use std::fmt;

/// Error type for the hardware model.
#[derive(Debug, Clone, PartialEq)]
pub enum AccelError {
    /// The hardware configuration is invalid (zero-sized array, zero clock, …).
    InvalidConfig(String),
    /// The compiled program references a layer the network does not have.
    InvalidProgram(String),
    /// The DNN substrate reported an error.
    Nn(ptolemy_nn::NnError),
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::InvalidConfig(msg) => write!(f, "invalid hardware configuration: {msg}"),
            AccelError::InvalidProgram(msg) => write!(f, "invalid compiled program: {msg}"),
            AccelError::Nn(e) => write!(f, "dnn substrate error: {e}"),
        }
    }
}

impl std::error::Error for AccelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccelError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ptolemy_nn::NnError> for AccelError {
    fn from(e: ptolemy_nn::NnError) -> Self {
        AccelError::Nn(e)
    }
}

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, AccelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(!AccelError::InvalidConfig("x".into()).to_string().is_empty());
        assert!(!AccelError::InvalidProgram("y".into())
            .to_string()
            .is_empty());
        let e: AccelError = ptolemy_nn::NnError::EmptyDataset.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
