//! The task-level simulator: executes a compiled detection program on the hardware
//! model, honouring unit occupancy and the compiler's dependence edges.

use std::collections::HashMap;

use ptolemy_compiler::{CompiledProgram, HwTask, HwUnit};
use ptolemy_nn::{LayerKind, Network};

use crate::{AccelError, ExecutionReport, HardwareConfig, Result, TaskTiming};

/// Per-layer quantities the cost model needs.
#[derive(Debug, Clone, Copy)]
struct LayerStats {
    macs: u64,
    in_len: u64,
    out_len: u64,
    weights: u64,
    /// Average receptive-field size (partial sums per output neuron).
    rf: u64,
}

fn weight_count(kind: &LayerKind) -> u64 {
    match kind {
        LayerKind::Dense { inputs, outputs } => (*inputs as u64) * (*outputs as u64),
        LayerKind::Conv2d {
            geometry,
            out_channels,
        } => (geometry.patch_len() * out_channels) as u64,
        LayerKind::Residual { inner } => inner.iter().map(weight_count).sum(),
        _ => 0,
    }
}

fn layer_stats(network: &Network, layer: usize) -> Result<LayerStats> {
    let l = network
        .layer(layer)
        .map_err(|e| AccelError::InvalidProgram(e.to_string()))?;
    let kind = l.kind();
    let macs = kind.macs();
    let out_len = l.output_len() as u64;
    Ok(LayerStats {
        macs,
        in_len: l.input_len() as u64,
        out_len,
        weights: weight_count(&kind),
        rf: macs.checked_div(out_len).map_or(0, |rf| rf.max(1)),
    })
}

/// Extra DRAM space detection requires (paper Sec. VII-A "DRAM Space").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DramSpaceReport {
    /// Bytes of partial sums that must be resident (zero when every cumulative layer
    /// uses the recompute optimisation).
    pub partial_sum_bytes: u64,
    /// Bytes of recomputed partial sums (bounded by the important receptive fields).
    pub recomputed_partial_sum_bytes: u64,
    /// Bytes of single-bit masks for absolute-threshold layers.
    pub mask_bytes: u64,
    /// Bytes holding the activation path and the canary class path being compared.
    pub path_bytes: u64,
}

impl DramSpaceReport {
    /// Total extra DRAM space in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.partial_sum_bytes
            + self.recomputed_partial_sum_bytes
            + self.mask_bytes
            + self.path_bytes
    }

    /// Total extra DRAM space in megabytes.
    pub fn total_mb(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

/// Computes the extra DRAM footprint of a compiled program.
///
/// `density` is the measured fraction of important neurons (bounds the recomputed
/// partial-sum storage).
///
/// # Errors
///
/// Returns [`AccelError::InvalidProgram`] if the program references unknown layers.
pub fn dram_space_report(
    network: &Network,
    compiled: &CompiledProgram,
    config: &HardwareConfig,
    density: f32,
) -> Result<DramSpaceReport> {
    let density = f64::from(density.clamp(0.0, 1.0));
    let mut report = DramSpaceReport::default();
    for st in &compiled.tasks {
        match st.task {
            HwTask::Inference {
                layer,
                store_partial_sums,
            } => {
                let s = layer_stats(network, layer)?;
                if store_partial_sums {
                    report.partial_sum_bytes += s.macs * config.value_bytes();
                }
            }
            HwTask::RecomputePartialSums { layer } => {
                let s = layer_stats(network, layer)?;
                let important = ((s.out_len as f64 * density).ceil() as u64).max(1);
                report.recomputed_partial_sum_bytes += important * s.rf * config.value_bytes();
            }
            HwTask::Extract {
                layer, cumulative, ..
            } => {
                let s = layer_stats(network, layer)?;
                if !cumulative {
                    // One mask bit per partial sum (stored by the augmented MACs).
                    report.mask_bytes += s.macs.div_ceil(8);
                }
                // The per-layer path segment (one bit per feature-map element).
                report.path_bytes += s.in_len.max(s.out_len).div_ceil(8) * 2;
            }
            HwTask::Classify => {}
        }
    }
    Ok(report)
}

/// The Ptolemy hardware simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: HardwareConfig,
}

impl Simulator {
    /// Creates a simulator for a validated hardware configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] for invalid configurations.
    pub fn new(config: HardwareConfig) -> Result<Self> {
        config.validate()?;
        Ok(Simulator { config })
    }

    /// The hardware configuration.
    pub fn config(&self) -> &HardwareConfig {
        &self.config
    }

    /// Simulates one detection-augmented inference.
    ///
    /// `density` is the fraction of feature-map elements marked important for this
    /// workload (measured by profiling; the paper observes values below ~5 % at
    /// full scale, our scaled-down models sit higher).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidProgram`] if the compiled program references
    /// layers the network does not have.
    pub fn simulate(
        &self,
        network: &Network,
        compiled: &CompiledProgram,
        density: f32,
    ) -> Result<ExecutionReport> {
        let density = f64::from(density.clamp(0.0, 1.0));
        let cfg = &self.config;

        // Baseline: plain inference of every weight layer, no detection.
        let mut inference_cycles = 0u64;
        let mut inference_energy = 0.0f64;
        let mut inference_dram = 0u64;
        for &layer in &network.weight_layer_indices() {
            let s = layer_stats(network, layer)?;
            let (cycles, energy, dram) = self.inference_cost(&s, false);
            inference_cycles += cycles;
            inference_energy += energy;
            inference_dram += dram;
        }

        // Execute the schedule.
        let mut unit_free: HashMap<HwUnit, u64> = HashMap::new();
        let mut finish: Vec<u64> = Vec::with_capacity(compiled.tasks.len());
        let mut timings = Vec::with_capacity(compiled.tasks.len());
        let mut total_energy = 0.0f64;
        let mut extra_dram = 0u64;

        for (idx, st) in compiled.tasks.iter().enumerate() {
            let (cycles, energy, dram, is_detection) = match st.task {
                HwTask::Inference {
                    layer,
                    store_partial_sums,
                } => {
                    let s = layer_stats(network, layer)?;
                    let (c, e, d) = self.inference_cost(&s, store_partial_sums);
                    let (_, base_e, base_d) = self.inference_cost(&s, false);
                    extra_dram += d - base_d;
                    total_energy += e;
                    // Only the detection-induced part counts as overhead energy, but
                    // the full energy is already accumulated; nothing more to do.
                    let _ = base_e;
                    (c, e, d, false)
                }
                HwTask::RecomputePartialSums { layer } => {
                    let s = layer_stats(network, layer)?;
                    let important = ((s.out_len as f64 * density).ceil() as u64).max(1);
                    let work = important * s.rf;
                    // Only the first PE row is active during csps re-computation.
                    let cycles = work.div_ceil(cfg.array_cols as u64);
                    let energy = work as f64 * cfg.mac_energy_pj()
                        + (work * cfg.value_bytes()) as f64 * cfg.energy.sram_byte_pj;
                    total_energy += energy;
                    (cycles, energy, 0, true)
                }
                HwTask::Extract {
                    layer,
                    cumulative,
                    forward,
                } => {
                    let s = layer_stats(network, layer)?;
                    let (c, e, d) =
                        self.extraction_cost(&s, cumulative, forward, density, compiled);
                    extra_dram += d;
                    total_energy += e;
                    (c, e, d, true)
                }
                HwTask::Classify => {
                    // The random forest runs on the MCU in microseconds — five orders
                    // of magnitude below a full-scale inference (Sec. V-D) — so its
                    // latency is modelled as a small constant to avoid distorting the
                    // scaled-down networks; its energy is charged in full.
                    let cycles = 8;
                    let energy = 2_000.0 * cfg.energy.mcu_op_pj;
                    total_energy += energy;
                    (cycles, energy, 0, true)
                }
            };
            let _ = (energy, dram, is_detection);

            let unit = st.task.unit();
            let dep_ready = st
                .depends_on
                .iter()
                .map(|&d| finish.get(d).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            let unit_ready = unit_free.get(&unit).copied().unwrap_or(0);
            let start = dep_ready.max(unit_ready);
            let end = start + cycles;
            unit_free.insert(unit, end);
            finish.push(end);
            timings.push(TaskTiming {
                task_index: idx,
                unit,
                start_cycle: start,
                finish_cycle: end,
            });
        }

        let total_cycles = finish.iter().copied().max().unwrap_or(0);
        Ok(ExecutionReport {
            inference_cycles,
            total_cycles,
            inference_energy_pj: inference_energy,
            total_energy_pj: total_energy,
            extra_dram_traffic_bytes: extra_dram,
            inference_dram_traffic_bytes: inference_dram,
            extra_dram_space_bytes: dram_space_report(network, compiled, cfg, density as f32)?
                .total_bytes(),
            task_timings: timings,
        })
    }

    /// Simulates a plain inference of `network` with no detection attached.
    ///
    /// Baseline cost models use this to price extra networks that run on the same
    /// accelerator (e.g. DeepFense's redundant latent defender models): the returned
    /// report has identical inference and total figures and an empty task timeline.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidProgram`] if a layer's statistics cannot be
    /// derived (never happens for networks built by `ptolemy-nn`).
    pub fn inference_report(&self, network: &Network) -> Result<ExecutionReport> {
        let mut cycles = 0u64;
        let mut energy = 0.0f64;
        let mut dram = 0u64;
        for &layer in &network.weight_layer_indices() {
            let s = layer_stats(network, layer)?;
            let (c, e, d) = self.inference_cost(&s, false);
            cycles += c;
            energy += e;
            dram += d;
        }
        Ok(ExecutionReport {
            inference_cycles: cycles,
            total_cycles: cycles,
            inference_energy_pj: energy,
            total_energy_pj: energy,
            extra_dram_traffic_bytes: 0,
            inference_dram_traffic_bytes: dram,
            extra_dram_space_bytes: 0,
            task_timings: Vec::new(),
        })
    }

    /// Cycles, energy and DRAM traffic of one layer's inference.
    fn inference_cost(&self, s: &LayerStats, store_partial_sums: bool) -> (u64, f64, u64) {
        let cfg = &self.config;
        let fill_drain = (cfg.array_rows + cfg.array_cols) as u64;
        let mut cycles = s.macs.div_ceil(cfg.macs_per_cycle()) + fill_drain;
        let act_bytes = (s.in_len + s.out_len) * cfg.value_bytes();
        let weight_bytes = s.weights * cfg.value_bytes();
        let mut dram = act_bytes + weight_bytes;
        let mut energy = s.macs as f64 * cfg.mac_energy_pj()
            + (act_bytes + weight_bytes) as f64
                * (cfg.energy.sram_byte_pj + cfg.energy.dram_byte_pj);
        if store_partial_sums {
            let psum_bytes = s.macs * cfg.value_bytes();
            // Partial-sum writes are double-buffered to DRAM; the PE array stalls
            // when the write bandwidth cannot keep up.
            let write_cycles = (psum_bytes as f64 / cfg.dram_bytes_per_cycle).ceil() as u64;
            cycles = cycles.max(write_cycles) + write_cycles / 4;
            dram += psum_bytes;
            energy += psum_bytes as f64 * (cfg.energy.sram_byte_pj + cfg.energy.dram_byte_pj);
        }
        (cycles, energy, dram)
    }

    /// Cycles, energy and extra DRAM traffic of one layer's extraction block.
    fn extraction_cost(
        &self,
        s: &LayerStats,
        cumulative: bool,
        forward: bool,
        density: f64,
        compiled: &CompiledProgram,
    ) -> (u64, f64, u64) {
        let cfg = &self.config;
        let important = ((s.out_len as f64 * density).ceil() as u64).max(1);
        if cumulative {
            // Sort + merge + accumulate the partial sums of every important
            // receptive field.
            let work = important * s.rf;
            let log_rf = (s.rf.max(2) as f64).log2().ceil() as u64;
            let sort_throughput = (cfg.sort_units * cfg.sort_unit_width) as u64;
            let sort_cycles = (work * log_rf).div_ceil(sort_throughput);
            let merge_cycles = work.div_ceil(cfg.merge_tree_length as u64);
            let acum_cycles = work.div_ceil(4);
            let compute_cycles = if compiled.optimizations.neuron_pipelining {
                (sort_cycles + merge_cycles).max(acum_cycles)
            } else {
                sort_cycles + merge_cycles + acum_cycles
            };
            // Partial sums are streamed from the banked psum SRAM (or DRAM when they
            // were stored by `infsp`); sorting is memory-bound once enough sort
            // units are provisioned (Sec. VII-G).
            let psum_bytes = work * cfg.value_bytes();
            let stored = !compiled.optimizations.recompute_partial_sums;
            let read_bandwidth = if stored {
                cfg.dram_bytes_per_cycle
            } else {
                (cfg.psum_sram_kb / 2).max(16) as f64
            };
            let read_cycles = (psum_bytes as f64 / read_bandwidth).ceil() as u64;
            let cycles = compute_cycles.max(read_cycles);

            // The sorting network performs ~n·log²n/2 compare-exchanges per receptive
            // field and each merge level re-reads the partial sums from the path
            // constructor's SRAM, so the energy scales with the number of passes —
            // this is what makes cumulative thresholds so much more expensive than
            // absolute ones (paper Fig. 11, Sec. III-C).
            let sort_passes = log_rf.max(1);
            let compare_exchanges = work * log_rf * log_rf / 2;
            let mut energy = compare_exchanges as f64 * cfg.energy.compare_pj
                + (psum_bytes * sort_passes) as f64 * cfg.energy.sram_byte_pj
                + work as f64 * cfg.energy.compare_pj
                // Path-constructor activity (sort-unit switching) grows with the
                // provisioned units, which is what makes over-provisioning sort
                // units a power problem (Fig. 18b).
                + cycles as f64 * cfg.sort_units as f64 * 2.0;
            let mut dram = 0;
            if stored {
                energy += psum_bytes as f64 * cfg.energy.dram_byte_pj;
                dram += psum_bytes;
            }
            // Mask generation for the selected neurons.
            let mask_bytes = s.in_len.div_ceil(8);
            energy += mask_bytes as f64 * cfg.energy.sram_byte_pj;
            (cycles, energy, dram)
        } else {
            // Absolute thresholds: the compare happened inside the augmented MACs
            // during inference; extraction reads the single-bit masks and aggregates
            // them into the path (bit-parallel).  At this model's scale the mask
            // arrays fit in the 32 KB psum/mask SRAM, so they are written and read
            // on-chip and never round-trip through DRAM (the paper's own DRAM-traffic
            // overhead for masks is below 0.1 %).
            let mask_bits = if forward { s.out_len } else { important * s.rf };
            let cycles = mask_bits.div_ceil(128).max(1);
            let stored_mask_bytes = s.macs.div_ceil(8);
            let energy = s.macs as f64 * cfg.energy.compare_pj
                + stored_mask_bytes as f64 * cfg.energy.sram_byte_pj * 2.0
                + mask_bits.div_ceil(8) as f64 * cfg.energy.sram_byte_pj;
            (cycles, energy, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_compiler::{Compiler, OptimizationFlags};
    use ptolemy_core::variants;
    use ptolemy_nn::zoo;
    use ptolemy_tensor::Rng64;

    fn setup() -> (Network, Simulator) {
        let net = zoo::conv_net(10, &mut Rng64::new(0)).unwrap();
        (net, Simulator::new(HardwareConfig::default()).unwrap())
    }

    fn run(
        net: &Network,
        sim: &Simulator,
        program: &ptolemy_core::DetectionProgram,
    ) -> ExecutionReport {
        let compiled = Compiler::default().compile(net, program).unwrap();
        sim.simulate(net, &compiled, 0.08).unwrap()
    }

    #[test]
    fn variant_latency_ordering_matches_the_paper() {
        let (net, sim) = setup();
        let bwcu = run(&net, &sim, &variants::bw_cu(&net, 0.5).unwrap());
        let bwab = run(&net, &sim, &variants::bw_ab(&net, 0.3).unwrap());
        let fwab = run(&net, &sim, &variants::fw_ab(&net, 0.3).unwrap());
        let hybrid = run(&net, &sim, &variants::hybrid(&net, 0.3, 0.5).unwrap());

        // Paper Fig. 11: BwCu ≫ Hybrid > BwAb > FwAb ≈ 1.
        assert!(bwcu.latency_factor() > hybrid.latency_factor());
        assert!(hybrid.latency_factor() > fwab.latency_factor());
        assert!(bwab.latency_factor() >= fwab.latency_factor());
        assert!(
            bwcu.latency_factor() > 2.0,
            "BwCu {:.2}",
            bwcu.latency_factor()
        );
        assert!(
            fwab.latency_overhead() < 0.25,
            "FwAb overhead {:.3}",
            fwab.latency_overhead()
        );
        // Energy ordering: BwCu is the most expensive, FwAb/BwAb the cheapest.
        assert!(bwcu.energy_factor() > bwab.energy_factor());
        assert!(bwcu.energy_factor() > 1.2);
        assert!(fwab.energy_factor() < bwcu.energy_factor());
        // All reports carry a task timeline.
        assert!(!bwcu.task_timings.is_empty());
    }

    #[test]
    fn forward_pipelining_hides_extraction_latency() {
        let (net, sim) = setup();
        let program = variants::fw_ab(&net, 0.3).unwrap();
        let pipelined = Compiler::default().compile(&net, &program).unwrap();
        let serial = Compiler::new(OptimizationFlags {
            layer_pipelining: false,
            ..OptimizationFlags::default()
        })
        .compile(&net, &program)
        .unwrap();
        let fast = sim.simulate(&net, &pipelined, 0.08).unwrap();
        let slow = sim.simulate(&net, &serial, 0.08).unwrap();
        assert!(
            fast.total_cycles <= slow.total_cycles,
            "pipelining must never slow execution down"
        );
    }

    #[test]
    fn recompute_trades_dram_space_for_compute() {
        let (net, sim) = setup();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let recompute = Compiler::default().compile(&net, &program).unwrap();
        let store = Compiler::new(OptimizationFlags {
            recompute_partial_sums: false,
            ..OptimizationFlags::default()
        })
        .compile(&net, &program)
        .unwrap();
        let space_recompute = dram_space_report(&net, &recompute, sim.config(), 0.08).unwrap();
        let space_store = dram_space_report(&net, &store, sim.config(), 0.08).unwrap();
        assert!(space_recompute.total_bytes() < space_store.total_bytes());
        assert!(space_store.partial_sum_bytes > 0);
        assert_eq!(space_recompute.partial_sum_bytes, 0);
        assert!(space_recompute.total_mb() >= 0.0);
        // Storing partial sums also adds DRAM traffic.
        let traffic_store = sim.simulate(&net, &store, 0.08).unwrap();
        let traffic_recompute = sim.simulate(&net, &recompute, 0.08).unwrap();
        assert!(
            traffic_store.extra_dram_traffic_bytes > traffic_recompute.extra_dram_traffic_bytes
        );
    }

    #[test]
    fn deeper_networks_have_higher_extraction_overhead() {
        let sim = Simulator::new(HardwareConfig::default()).unwrap();
        let conv = zoo::conv_net(10, &mut Rng64::new(1)).unwrap();
        let resnet = zoo::resnet_mini(10, &mut Rng64::new(1)).unwrap();
        let conv_report = {
            let p = variants::bw_cu(&conv, 0.5).unwrap();
            let c = Compiler::default().compile(&conv, &p).unwrap();
            sim.simulate(&conv, &c, 0.08).unwrap()
        };
        let resnet_report = {
            let p = variants::bw_cu(&resnet, 0.5).unwrap();
            let c = Compiler::default().compile(&resnet, &p).unwrap();
            sim.simulate(&resnet, &c, 0.08).unwrap()
        };
        // Paper Sec. VII-C: the overhead grows with depth (ResNet18 ≫ AlexNet).
        assert!(resnet_report.latency_factor() > conv_report.latency_factor());
    }

    #[test]
    fn bigger_merge_trees_and_sort_units_reduce_latency() {
        let net = zoo::conv_net(10, &mut Rng64::new(2)).unwrap();
        let program = variants::bw_cu(&net, 0.5).unwrap();
        let compiled = Compiler::default().compile(&net, &program).unwrap();
        let mut latencies = Vec::new();
        let mut powers = Vec::new();
        for sort_units in [2usize, 4, 8, 16] {
            let cfg = HardwareConfig::default().with_path_constructor(sort_units, 16);
            let report = Simulator::new(cfg)
                .unwrap()
                .simulate(&net, &compiled, 0.08)
                .unwrap();
            latencies.push(report.total_cycles);
            powers.push(report.power_factor());
        }
        // Latency is non-increasing in the number of sort units (and eventually
        // memory-bound), while power keeps growing — Fig. 18b.
        assert!(latencies.windows(2).all(|w| w[1] <= w[0]));
        assert!(powers.last().unwrap() >= powers.first().unwrap());

        let mut merge_latencies = Vec::new();
        for merge in [4usize, 8, 16, 32] {
            let cfg = HardwareConfig::default().with_path_constructor(2, merge);
            let report = Simulator::new(cfg)
                .unwrap()
                .simulate(&net, &compiled, 0.08)
                .unwrap();
            merge_latencies.push(report.total_cycles);
        }
        assert!(merge_latencies.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn invalid_configurations_and_programs_are_rejected() {
        assert!(Simulator::new(HardwareConfig {
            array_rows: 0,
            ..HardwareConfig::default()
        })
        .is_err());
        // A program compiled for a different network fails cleanly when the layer
        // indices do not exist in the target network.
        let big = zoo::conv_net(10, &mut Rng64::new(3)).unwrap();
        let small = zoo::mlp_net(&[4], 2, &mut Rng64::new(3)).unwrap();
        let program = variants::bw_cu(&big, 0.5).unwrap();
        let compiled = Compiler::default().compile(&big, &program).unwrap();
        let sim = Simulator::new(HardwareConfig::default()).unwrap();
        assert!(sim.simulate(&small, &compiled, 0.1).is_err());
    }
}
