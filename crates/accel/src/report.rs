//! Execution reports produced by the simulator.

use ptolemy_compiler::HwUnit;

/// Start/finish times of one scheduled task (for debugging and the pipelining
/// tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTiming {
    /// Index of the task in the compiled program.
    pub task_index: usize,
    /// Unit the task ran on.
    pub unit: HwUnit,
    /// Cycle at which the task started.
    pub start_cycle: u64,
    /// Cycle at which the task finished.
    pub finish_cycle: u64,
}

/// Latency, energy and memory accounting of one detection-augmented inference.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Cycles a plain inference (no detection) would take on the same hardware.
    pub inference_cycles: u64,
    /// Cycles of the full detection-augmented execution.
    pub total_cycles: u64,
    /// Energy of a plain inference in picojoules.
    pub inference_energy_pj: f64,
    /// Energy of the full detection-augmented execution in picojoules.
    pub total_energy_pj: f64,
    /// Extra DRAM traffic introduced by detection, in bytes.
    pub extra_dram_traffic_bytes: u64,
    /// DRAM traffic of the plain inference, in bytes.
    pub inference_dram_traffic_bytes: u64,
    /// Extra DRAM space needed to hold partial sums / masks / paths, in bytes.
    pub extra_dram_space_bytes: u64,
    /// Per-task timeline.
    pub task_timings: Vec<TaskTiming>,
}

impl ExecutionReport {
    /// End-to-end latency relative to plain inference (`1.0` = no overhead,
    /// `12.3` = the paper's BwCu-on-AlexNet figure).
    pub fn latency_factor(&self) -> f64 {
        if self.inference_cycles == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.inference_cycles as f64
        }
    }

    /// Latency overhead as a fraction (`0.02` = 2 %).
    pub fn latency_overhead(&self) -> f64 {
        (self.latency_factor() - 1.0).max(0.0)
    }

    /// Energy relative to plain inference.
    pub fn energy_factor(&self) -> f64 {
        // lint:allow(float-eq): division guard for the unmodelled-energy sentinel
        if self.inference_energy_pj == 0.0 {
            0.0
        } else {
            self.total_energy_pj / self.inference_energy_pj
        }
    }

    /// Energy overhead as a fraction.
    pub fn energy_overhead(&self) -> f64 {
        (self.energy_factor() - 1.0).max(0.0)
    }

    /// Extra DRAM traffic relative to the inference's own traffic.
    pub fn dram_traffic_overhead(&self) -> f64 {
        if self.inference_dram_traffic_bytes == 0 {
            0.0
        } else {
            self.extra_dram_traffic_bytes as f64 / self.inference_dram_traffic_bytes as f64
        }
    }

    /// Average power relative to plain inference (used by the Fig. 18 sweeps, which
    /// report power rather than energy).
    pub fn power_factor(&self) -> f64 {
        // lint:allow(float-eq): division guard for the unmodelled-energy sentinel
        if self.total_cycles == 0 || self.inference_cycles == 0 || self.inference_energy_pj == 0.0 {
            0.0
        } else {
            (self.total_energy_pj / self.total_cycles as f64)
                / (self.inference_energy_pj / self.inference_cycles as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExecutionReport {
        ExecutionReport {
            inference_cycles: 1000,
            total_cycles: 1200,
            inference_energy_pj: 500.0,
            total_energy_pj: 600.0,
            extra_dram_traffic_bytes: 50,
            inference_dram_traffic_bytes: 1000,
            extra_dram_space_bytes: 4096,
            task_timings: Vec::new(),
        }
    }

    #[test]
    fn factors_and_overheads() {
        let r = report();
        assert!((r.latency_factor() - 1.2).abs() < 1e-9);
        assert!((r.latency_overhead() - 0.2).abs() < 1e-9);
        assert!((r.energy_factor() - 1.2).abs() < 1e-9);
        assert!((r.dram_traffic_overhead() - 0.05).abs() < 1e-9);
        assert!((r.power_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_baselines_do_not_divide_by_zero() {
        let r = ExecutionReport {
            inference_cycles: 0,
            inference_energy_pj: 0.0,
            inference_dram_traffic_bytes: 0,
            ..report()
        };
        assert_eq!(r.latency_factor(), 0.0);
        assert_eq!(r.energy_factor(), 0.0);
        assert_eq!(r.dram_traffic_overhead(), 0.0);
        assert_eq!(r.power_factor(), 0.0);
        assert_eq!(r.latency_overhead(), 0.0);
    }
}
