//! Experiment scale control.
//!
//! The paper's evaluation runs full ImageNet/CIFAR workloads on a server farm; this
//! reproduction runs on a laptop, so every experiment harness accepts a
//! [`BenchScale`] that controls dataset size, training epochs and the number of
//! attacked samples.  `Quick` keeps every harness in the seconds-to-a-minute range,
//! `Full` uses larger sets for tighter statistics.  The scale can also be selected
//! with the `PTOLEMY_BENCH_SCALE` environment variable (`quick` / `full`).

/// How much work each experiment harness performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BenchScale {
    /// Small datasets and few attacked samples; every harness finishes quickly.
    #[default]
    Quick,
    /// Larger datasets and more attacked samples for tighter statistics.
    Full,
}

impl BenchScale {
    /// Reads the scale from the `PTOLEMY_BENCH_SCALE` environment variable,
    /// defaulting to [`BenchScale::Quick`].
    pub fn from_env() -> Self {
        match std::env::var("PTOLEMY_BENCH_SCALE") {
            Ok(v) if v.eq_ignore_ascii_case("full") => BenchScale::Full,
            _ => BenchScale::Quick,
        }
    }

    /// Number of profiled classes for the "ImageNet-class" workbench (the paper's
    /// Fig. 5a also samples 10 of the 1,000 classes).
    pub fn imagenet_classes(&self) -> usize {
        match self {
            BenchScale::Quick => 10,
            BenchScale::Full => 20,
        }
    }

    /// Number of classes for the "CIFAR-100-class" workbench.
    pub fn cifar100_classes(&self) -> usize {
        match self {
            BenchScale::Quick => 20,
            BenchScale::Full => 100,
        }
    }

    /// Training samples generated per class.
    pub fn train_per_class(&self) -> usize {
        match self {
            BenchScale::Quick => 20,
            BenchScale::Full => 60,
        }
    }

    /// Test samples generated per class.
    pub fn test_per_class(&self) -> usize {
        match self {
            BenchScale::Quick => 6,
            BenchScale::Full => 20,
        }
    }

    /// Training epochs.
    pub fn epochs(&self) -> usize {
        match self {
            BenchScale::Quick => 40,
            BenchScale::Full => 80,
        }
    }

    /// Number of benign test inputs attacked per attack.
    pub fn attack_samples(&self) -> usize {
        match self {
            BenchScale::Quick => 24,
            BenchScale::Full => 100,
        }
    }

    /// The scale's stable lowercase label (`"quick"` / `"full"`), recorded in
    /// every `BENCH_<experiment>.json` report.
    pub fn label(&self) -> &'static str {
        match self {
            BenchScale::Quick => "quick",
            BenchScale::Full => "full",
        }
    }

    /// Iteration budget of the iterative attacks (BIM/PGD/CW/DeepFool).
    pub fn attack_iterations(&self) -> usize {
        match self {
            BenchScale::Quick => 20,
            BenchScale::Full => 60,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full_everywhere() {
        let (q, f) = (BenchScale::Quick, BenchScale::Full);
        assert!(q.imagenet_classes() <= f.imagenet_classes());
        assert!(q.cifar100_classes() <= f.cifar100_classes());
        assert!(q.train_per_class() < f.train_per_class());
        assert!(q.test_per_class() < f.test_per_class());
        assert!(q.epochs() < f.epochs());
        assert!(q.attack_samples() < f.attack_samples());
        assert!(q.attack_iterations() < f.attack_iterations());
    }

    #[test]
    fn default_and_env_fallback_are_quick() {
        assert_eq!(BenchScale::default(), BenchScale::Quick);
        // Without the variable set (the normal test environment) we get Quick.
        if std::env::var("PTOLEMY_BENCH_SCALE").is_err() {
            assert_eq!(BenchScale::from_env(), BenchScale::Quick);
        }
    }
}
