//! Regenerates Fig. 11a/11b (latency/energy vs EP) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig11_latency_energy`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::fig11_latency_energy::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
