//! Regenerates Fig. 11a/11b (latency/energy vs EP) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig11_latency_energy`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("fig11_latency_energy");
}
