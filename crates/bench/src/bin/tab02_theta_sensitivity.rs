//! Regenerates Table II (theta sensitivity of BwCu) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin tab02_theta_sensitivity`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::tab02_theta_sensitivity::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
