//! Regenerates Table II (theta sensitivity of BwCu) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin tab02_theta_sensitivity`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("tab02_theta_sensitivity");
}
