//! Runs the beyond-paper extraction-overlap experiment (materialized
//! trace-then-extract pipeline vs streaming extraction overlapped with the
//! forward pass, with peak resident activation bytes).
//!
//! Run with `cargo run --release -p ptolemy-bench --bin extraction_overlap`;
//! set `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::extraction_overlap::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
