//! Runs the beyond-paper extraction-overlap experiment (materialized
//! trace-then-extract pipeline vs streaming extraction overlapped with the
//! forward pass, with peak resident activation bytes).
//!
//! Run with `cargo run --release -p ptolemy-bench --bin extraction_overlap`;
//! set `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("extraction_overlap");
}
