//! Regenerates Sec. VII-G (8-bit and 32x32 array scaling) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin sec7g_scaling`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::sec7g_scaling::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
