//! Regenerates Sec. VII-G (8-bit and 32x32 array scaling) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin sec7g_scaling`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("sec7g_scaling");
}
