//! Runs the beyond-paper GEMM microkernel experiment (naive scalar loop vs
//! blocked register-tiled kernel vs row-parallel driver, parity-gated).
//!
//! Run with `cargo run --release -p ptolemy-bench --bin gemm_microkernel`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("gemm_microkernel");
}
