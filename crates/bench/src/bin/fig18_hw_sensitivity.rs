//! Regenerates Fig. 18a/18b (path-constructor provisioning) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig18_hw_sensitivity`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("fig18_hw_sensitivity");
}
