//! Runs the beyond-paper observability-overhead experiment (uninstrumented
//! serving vs a registry attached-but-disabled vs enabled).
//!
//! Run with `cargo run --release -p ptolemy-bench --bin obs_overhead`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("obs_overhead");
}
