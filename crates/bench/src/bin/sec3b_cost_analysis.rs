//! Regenerates the Sec. III-B software cost analysis of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin sec3b_cost_analysis`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("sec3b_cost_analysis");
}
