//! Regenerates the Sec. III-B software cost analysis of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin sec3b_cost_analysis`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::sec3b_cost_analysis::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
