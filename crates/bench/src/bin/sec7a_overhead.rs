//! Regenerates Sec. VII-A (area and DRAM-space overhead) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin sec7a_overhead`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::sec7a_overhead::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
