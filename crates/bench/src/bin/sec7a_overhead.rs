//! Regenerates Sec. VII-A (area and DRAM-space overhead) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin sec7a_overhead`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("sec7a_overhead");
}
