//! Runs the beyond-paper batch-fusion experiment (per-input `par_map`
//! forward-trace loop vs one fused NCHW batched im2col/matmul trace).
//!
//! Run with `cargo run --release -p ptolemy-bench --bin batch_fusion`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("batch_fusion");
}
