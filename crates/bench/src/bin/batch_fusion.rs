//! Runs the beyond-paper batch-fusion experiment (per-input `par_map`
//! forward-trace loop vs one fused NCHW batched im2col/matmul trace).
//!
//! Run with `cargo run --release -p ptolemy-bench --bin batch_fusion`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::batch_fusion::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
