//! Regenerates Fig. 16a/16b (BwCu early termination) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig16_early_termination`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("fig16_early_termination");
}
