//! Regenerates Fig. 16a/16b (BwCu early termination) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig16_early_termination`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::fig16_early_termination::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
