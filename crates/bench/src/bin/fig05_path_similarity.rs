//! Regenerates Fig. 5a/5b (inter-class path similarity) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig05_path_similarity`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("fig05_path_similarity");
}
