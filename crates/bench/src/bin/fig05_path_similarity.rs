//! Regenerates Fig. 5a/5b (inter-class path similarity) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig05_path_similarity`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::fig05_path_similarity::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
