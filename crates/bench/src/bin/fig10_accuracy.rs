//! Regenerates Fig. 10a/10b (accuracy vs EP and CDRP) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig10_accuracy`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::fig10_accuracy::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
