//! Regenerates Fig. 10a/10b (accuracy vs EP and CDRP) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig10_accuracy`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("fig10_accuracy");
}
