//! Runs the beyond-paper overload-survival experiment (goodput vs offered
//! load under deadlines, admission control and mixed-criticality
//! degradation; inertness and degraded-parity hard gates).
//!
//! Run with `cargo run --release -p ptolemy-bench --bin overload_survival`;
//! set `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("overload_survival");
}
