//! Runs every experiment harness in paper order and prints the full
//! EXPERIMENTS.md-style report (paper artifact, measured tables, shape checks).
//!
//! Run with `cargo run --release -p ptolemy-bench --bin all_experiments`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    let mut failures = 0usize;
    for experiment in experiments::all() {
        println!("################################################################");
        println!("# {} — {}", experiment.id, experiment.paper_artifact);
        println!("################################################################");
        match (experiment.run)(scale) {
            Ok(tables) => {
                for table in tables {
                    println!("{table}");
                }
            }
            Err(error) => {
                failures += 1;
                eprintln!("experiment {} failed: {error}", experiment.id);
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
