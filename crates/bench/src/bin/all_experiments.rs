//! Runs every experiment harness in paper order and prints the full
//! EXPERIMENTS.md-style report (paper artifact, measured tables, shape checks),
//! writing each experiment's `BENCH_<id>.json` perf report as it goes.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin all_experiments`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration and
//! `PTOLEMY_BENCH_OUT` to redirect the perf reports (default `target/bench/`).

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    let mut failures = 0usize;
    for experiment in experiments::all() {
        println!("################################################################");
        println!("# {} — {}", experiment.id, experiment.paper_artifact);
        println!("################################################################");
        match experiments::run_and_emit(&experiment, scale) {
            Ok((tables, report)) => {
                for table in tables {
                    println!("{table}");
                }
                println!("perf report: {}", report.display());
            }
            Err(error) => {
                failures += 1;
                eprintln!("experiment {} failed: {error}", experiment.id);
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
