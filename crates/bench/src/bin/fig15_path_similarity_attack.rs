//! Regenerates Fig. 15 (accuracy vs source/target path similarity) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig15_path_similarity_attack`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("fig15_similarity_attack");
}
