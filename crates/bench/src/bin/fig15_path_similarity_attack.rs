//! Regenerates Fig. 15 (accuracy vs source/target path similarity) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig15_path_similarity_attack`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::fig15_similarity_attack::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
