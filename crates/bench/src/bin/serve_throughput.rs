//! Runs the beyond-paper serving-throughput experiment (direct detect loop vs
//! the `ptolemy-serve` runtime, varying workers and batch budget).
//!
//! Run with `cargo run --release -p ptolemy-bench --bin serve_throughput`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::serve_throughput::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
