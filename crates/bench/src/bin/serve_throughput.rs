//! Runs the beyond-paper serving-throughput experiment (direct detect loop vs
//! the `ptolemy-serve` runtime, varying workers and batch budget).
//!
//! Run with `cargo run --release -p ptolemy-bench --bin serve_throughput`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("serve_throughput");
}
