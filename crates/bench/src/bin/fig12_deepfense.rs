//! Regenerates Fig. 12a/12b (DeepFense comparison) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig12_deepfense`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::fig12_deepfense::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
