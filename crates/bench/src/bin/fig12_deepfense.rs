//! Regenerates Fig. 12a/12b (DeepFense comparison) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig12_deepfense`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("fig12_deepfense");
}
