//! Runs the beyond-paper int8 quantized-serving experiment (f32 screen vs
//! int8 screen in the two-tier server: verdict-agreement hard gate,
//! throughput advisory).
//!
//! Run with `cargo run --release -p ptolemy-bench --bin quantized_serve`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("quantized_serve");
}
