//! Regenerates Fig. 13 (adaptive attacks) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig13_adaptive`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("fig13_adaptive");
}
