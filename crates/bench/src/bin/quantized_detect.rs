//! Runs the beyond-paper int8 quantized-detection experiment (agreement-rate
//! and AUC-delta gates against the f32 pipeline, latency advisory).
//!
//! Run with `cargo run --release -p ptolemy-bench --bin quantized_detect`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("quantized_detect");
}
