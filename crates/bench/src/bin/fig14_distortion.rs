//! Regenerates Fig. 14 (accuracy vs adaptive distortion) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig14_distortion`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::fig14_distortion::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
