//! Regenerates Fig. 14 (accuracy vs adaptive distortion) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig14_distortion`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("fig14_distortion");
}
