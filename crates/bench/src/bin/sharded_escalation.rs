//! Runs the beyond-paper sharded-escalation experiment (single tier-2
//! escalation engine vs class-path shards, serial vs pipelined against the
//! next batch's screening, with bit-parity and shard-routing shape checks).
//!
//! Run with `cargo run --release -p ptolemy-bench --bin sharded_escalation`;
//! set `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("sharded_escalation");
}
