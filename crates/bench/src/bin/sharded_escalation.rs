//! Runs the beyond-paper sharded-escalation experiment (single tier-2
//! escalation engine vs class-path shards, serial vs pipelined against the
//! next batch's screening, with bit-parity and shard-routing shape checks).
//!
//! Run with `cargo run --release -p ptolemy-bench --bin sharded_escalation`;
//! set `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::sharded_escalation::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
