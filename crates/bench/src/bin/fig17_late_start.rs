//! Regenerates Fig. 17a/17b (FwAb late start) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig17_late_start`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

use ptolemy_bench::{experiments, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    match experiments::fig17_late_start::run(scale) {
        Ok(tables) => {
            for table in tables {
                println!("{table}");
            }
        }
        Err(error) => {
            eprintln!("experiment failed: {error}");
            std::process::exit(1);
        }
    }
}
