//! Regenerates Fig. 17a/17b (FwAb late start) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin fig17_late_start`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("fig17_late_start");
}
