//! Regenerates Sec. VII-H (VGG / Inception / DenseNet results) of the Ptolemy paper.
//!
//! Run with `cargo run --release -p ptolemy-bench --bin sec7h_large_models`; set
//! `PTOLEMY_BENCH_SCALE=full` for the larger configuration.

fn main() {
    ptolemy_bench::run_binary("sec7h_large_models");
}
