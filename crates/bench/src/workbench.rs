//! Shared experiment setup: trained network + dataset pairs ("workbenches"), the
//! standard attack suite, and the accuracy / cost evaluation helpers every figure
//! harness uses.

use std::sync::Arc;

use ptolemy_accel::{AccelBackend, ExecutionReport, HardwareConfig, Simulator};
use ptolemy_attacks::{Attack, Bim, CarliniWagnerL2, DeepFool, Fgsm, Jsma};
use ptolemy_compiler::{Compiler, OptimizationFlags};
use ptolemy_core::engine::DEFAULT_THRESHOLD;
use ptolemy_core::{ClassPathSet, DetectionEngine, DetectionProgram, Profiler};
use ptolemy_data::{DatasetConfig, SyntheticDataset};
use ptolemy_forest::auc;
use ptolemy_nn::{zoo, Network, TrainConfig, Trainer};
use ptolemy_tensor::{Rng64, Tensor};

use crate::BenchScale;

/// Result alias for the harness (errors come from many crates, so they are boxed).
pub type BenchResult<T> = Result<T, Box<dyn std::error::Error>>;

/// A trained network plus the dataset it was trained on — the unit every
/// experiment harness operates on.
#[derive(Debug)]
pub struct Workbench {
    /// Human-readable name used in printed tables (e.g. `"AlexNet-class @ synth-ImageNet"`).
    pub name: String,
    /// The trained victim network (shared so detection engines can bind it
    /// without copying weights).
    pub network: Arc<Network>,
    /// The dataset the network was trained on.
    pub dataset: SyntheticDataset,
    /// The scale the workbench was built at.
    pub scale: BenchScale,
    /// Training-set accuracy reached by the victim (reported like the paper's
    /// "clean model accuracy" sanity check).
    pub clean_accuracy: f32,
    /// Decision threshold handed to every engine this workbench builds
    /// (default [`DEFAULT_THRESHOLD`]); sweeps override it with
    /// [`Workbench::with_detection_threshold`].
    pub detection_threshold: f32,
}

fn train(network: &mut Network, dataset: &SyntheticDataset, scale: BenchScale) -> BenchResult<f32> {
    // The deep zoo models diverge at the default SGD step size on the synthetic
    // datasets; a smaller learning rate with more epochs trains every victim to a
    // usable accuracy in seconds (picked by a sweep, see DESIGN.md "Known deviations").
    let report = Trainer::new(TrainConfig {
        epochs: scale.epochs(),
        batch_size: 8,
        learning_rate: 0.002,
        ..TrainConfig::default()
    })
    .fit(network, dataset.train())?;
    Ok(report.final_accuracy)
}

impl Workbench {
    /// The "AlexNet on ImageNet" stand-in: the 8-weight-layer [`zoo::conv_net`] on a
    /// class-subsampled synthetic ImageNet.
    ///
    /// # Errors
    ///
    /// Propagates dataset generation and training errors.
    pub fn alexnet_imagenet(scale: BenchScale) -> BenchResult<Self> {
        let dataset = SyntheticDataset::synth_imagenet_subset(
            scale.imagenet_classes(),
            scale.train_per_class(),
            scale.test_per_class(),
            0xA1E7,
        )?;
        let mut network = zoo::conv_net(dataset.num_classes(), &mut Rng64::new(0xA1E7))?;
        let clean_accuracy = train(&mut network, &dataset, scale)?;
        Ok(Workbench {
            name: "AlexNet-class @ synth-ImageNet".into(),
            network: Arc::new(network),
            dataset,
            scale,
            clean_accuracy,
            detection_threshold: DEFAULT_THRESHOLD,
        })
    }

    /// The "ResNet-18 on CIFAR-100" stand-in: [`zoo::resnet_mini`] on a synthetic
    /// many-class CIFAR-style dataset.
    ///
    /// # Errors
    ///
    /// Propagates dataset generation and training errors.
    pub fn resnet_cifar100(scale: BenchScale) -> BenchResult<Self> {
        let dataset = SyntheticDataset::generate(DatasetConfig {
            name: "synth-cifar100".into(),
            num_classes: scale.cifar100_classes(),
            shape: vec![3, 8, 8],
            train_per_class: scale.train_per_class(),
            test_per_class: scale.test_per_class(),
            noise: 0.15,
            seed: 0xC1FA,
        })?;
        let mut network = zoo::resnet_mini(dataset.num_classes(), &mut Rng64::new(0xC1FA))?;
        let clean_accuracy = train(&mut network, &dataset, scale)?;
        Ok(Workbench {
            name: "ResNet18-class @ synth-CIFAR-100".into(),
            network: Arc::new(network),
            dataset,
            scale,
            clean_accuracy,
            detection_threshold: DEFAULT_THRESHOLD,
        })
    }

    /// The "ResNet-18 on CIFAR-10" stand-in used by the DeepFense comparison.
    ///
    /// # Errors
    ///
    /// Propagates dataset generation and training errors.
    pub fn resnet_cifar10(scale: BenchScale) -> BenchResult<Self> {
        let dataset = SyntheticDataset::synth_cifar10(
            scale.train_per_class(),
            scale.test_per_class(),
            0xC1F0,
        )?;
        let mut network = zoo::resnet_mini(dataset.num_classes(), &mut Rng64::new(0xC1F0))?;
        let clean_accuracy = train(&mut network, &dataset, scale)?;
        Ok(Workbench {
            name: "ResNet18-class @ synth-CIFAR-10".into(),
            network: Arc::new(network),
            dataset,
            scale,
            clean_accuracy,
            detection_threshold: DEFAULT_THRESHOLD,
        })
    }

    /// A small LeNet workbench used by the Criterion micro-benches and smoke tests.
    ///
    /// # Errors
    ///
    /// Propagates dataset generation and training errors.
    pub fn lenet_small(scale: BenchScale) -> BenchResult<Self> {
        let dataset = SyntheticDataset::generate(DatasetConfig {
            name: "synth-small".into(),
            num_classes: 4,
            shape: vec![3, 8, 8],
            train_per_class: scale.train_per_class(),
            test_per_class: scale.test_per_class(),
            noise: 0.12,
            seed: 0x5A11,
        })?;
        let mut network = zoo::lenet(3, dataset.num_classes(), &mut Rng64::new(0x5A11))?;
        let clean_accuracy = train(&mut network, &dataset, scale)?;
        Ok(Workbench {
            name: "LeNet-class @ synth-small".into(),
            network: Arc::new(network),
            dataset,
            scale,
            clean_accuracy,
            detection_threshold: DEFAULT_THRESHOLD,
        })
    }

    /// Overrides the decision threshold every engine built by this workbench
    /// binds (used by the θ/threshold sweeps instead of re-deriving `0.5`).
    pub fn with_detection_threshold(mut self, threshold: f32) -> Self {
        self.detection_threshold = threshold;
        self
    }

    /// Profiles the canary class paths of this workbench for a detection program.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn profile(&self, program: &DetectionProgram) -> BenchResult<ClassPathSet> {
        Ok(Profiler::new(program.clone()).profile(&self.network, self.dataset.train())?)
    }

    /// Binds a similarity-serving [`DetectionEngine`] for a program on this
    /// workbench (no classifier: `path_similarity` and backend estimates only).
    /// The program/class-path fingerprint is validated here, once.
    ///
    /// # Errors
    ///
    /// Propagates engine-construction errors.
    pub fn engine(
        &self,
        program: &DetectionProgram,
        class_paths: &ClassPathSet,
    ) -> BenchResult<DetectionEngine> {
        Ok(
            DetectionEngine::builder(self.network.clone(), program.clone(), class_paths.clone())
                .threshold(self.detection_threshold)
                .build()?,
        )
    }

    /// Binds a fully-fitted [`DetectionEngine`] (classifier calibrated on the
    /// given benign/adversarial sets, hardware-model backend attached) — the
    /// serving configuration the paper's deployment story describes.
    ///
    /// # Errors
    ///
    /// Propagates engine-construction and calibration errors.
    pub fn serving_engine(
        &self,
        program: &DetectionProgram,
        class_paths: &ClassPathSet,
        benign: &[Tensor],
        adversarial: &[Tensor],
        config: &HardwareConfig,
    ) -> BenchResult<DetectionEngine> {
        Ok(
            DetectionEngine::builder(self.network.clone(), program.clone(), class_paths.clone())
                .threshold(self.detection_threshold)
                .backend(Box::new(AccelBackend::new(*config)))
                .calibrate(benign, adversarial)
                .build()?,
        )
    }

    /// Benign test inputs (up to `limit`).
    ///
    /// Only correctly-classified test inputs are returned: the paper's detection
    /// test sets are benign/adversarial splits of inputs the clean model handles
    /// correctly, so a clean-model mistake is not counted against the detector.
    pub fn benign_inputs(&self, limit: usize) -> Vec<Tensor> {
        self.dataset
            .test()
            .iter()
            .filter(|(x, y)| self.network.predict(x).map(|p| p == *y).unwrap_or(false))
            .take(limit)
            .map(|(x, _)| x.clone())
            .collect()
    }

    /// Labelled benign test samples (up to `limit`).
    pub fn benign_samples(&self, limit: usize) -> Vec<(Tensor, usize)> {
        self.dataset.test().iter().take(limit).cloned().collect()
    }

    /// Generates adversarial inputs by applying `attack` to up to `limit`
    /// correctly-classified test samples, keeping only successful attacks (the
    /// standard adversarial-detection evaluation setup).
    ///
    /// # Errors
    ///
    /// Propagates attack errors.
    pub fn adversarial_inputs(
        &self,
        attack: &dyn Attack,
        limit: usize,
    ) -> BenchResult<Vec<Tensor>> {
        let mut out = Vec::new();
        let mut fallback = Vec::new();
        for (input, label) in self.dataset.test() {
            if out.len() >= limit {
                break;
            }
            if self.network.predict(input)? != *label {
                continue;
            }
            let example = attack.perturb(&self.network, input, *label)?;
            if example.success {
                out.push(example.input);
            } else {
                fallback.push(example.input);
            }
        }
        // If the attack rarely succeeds on the scaled-down model, pad with the
        // unsuccessful perturbations so the AUC is still computed over a usable set.
        if out.len() < limit.min(4) {
            out.extend(fallback);
            out.truncate(limit);
        }
        if out.is_empty() {
            return Err("attack produced no adversarial inputs".into());
        }
        Ok(out)
    }

    /// Measures the average activation-path density of this workbench under a
    /// program — the `density` parameter the hardware model needs.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn measured_density(&self, program: &DetectionProgram) -> BenchResult<f32> {
        let profiler = Profiler::new(program.clone());
        let mut total = 0.0f32;
        let mut count = 0usize;
        for (input, _) in self.dataset.test().iter().take(8) {
            let (_, path) = profiler.extract(&self.network, input)?;
            total += path.density();
            count += 1;
        }
        if count == 0 {
            return Err("no test inputs available for density measurement".into());
        }
        Ok(total / count as f32)
    }

    /// Detection AUC of a Ptolemy program on this workbench: path similarity is the
    /// score, benign inputs are negatives, `adversarial` inputs are positives.
    ///
    /// The program/class-path pairing is validated once by the engine instead of
    /// per input.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn detection_auc(
        &self,
        program: &DetectionProgram,
        class_paths: &ClassPathSet,
        benign: &[Tensor],
        adversarial: &[Tensor],
    ) -> BenchResult<f32> {
        let engine = self.engine(program, class_paths)?;
        let mut scores = Vec::with_capacity(benign.len() + adversarial.len());
        let mut labels = Vec::with_capacity(benign.len() + adversarial.len());
        for (inputs, label) in [(benign, false), (adversarial, true)] {
            for input in inputs {
                let (_, s) = engine.path_similarity(input)?;
                scores.push(1.0 - s);
                labels.push(label);
            }
        }
        Ok(auc(&scores, &labels)?)
    }

    /// Compiles and simulates a detection program on this workbench's network with
    /// all compiler optimisations enabled.
    ///
    /// # Errors
    ///
    /// Propagates compiler and hardware-model errors.
    pub fn variant_cost(
        &self,
        program: &DetectionProgram,
        config: &HardwareConfig,
        density: f32,
    ) -> BenchResult<ExecutionReport> {
        self.variant_cost_with(program, config, density, OptimizationFlags::default())
    }

    /// Like [`Workbench::variant_cost`] with explicit compiler optimisation flags
    /// (used by the ablation harnesses).
    ///
    /// # Errors
    ///
    /// Propagates compiler and hardware-model errors.
    pub fn variant_cost_with(
        &self,
        program: &DetectionProgram,
        config: &HardwareConfig,
        density: f32,
        flags: OptimizationFlags,
    ) -> BenchResult<ExecutionReport> {
        let compiled = Compiler::new(flags).compile(&self.network, program)?;
        Ok(Simulator::new(*config)?.simulate(&self.network, &compiled, density)?)
    }
}

impl Workbench {
    /// Calibrates the absolute threshold φ so that extraction selects a useful
    /// fraction of neurons (~10 % of the feature maps at this scale).
    ///
    /// The paper tunes φ per network the same way it tunes θ (Sec. VII-B); on a
    /// scaled-down substrate the right absolute value depends on the trained
    /// weights, so the harness measures the resulting path density for a handful of
    /// candidates and keeps the closest to the target.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors.
    pub fn calibrate_phi(&self, forward: bool) -> BenchResult<f32> {
        let candidates = [0.01f32, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8];
        let target = 0.10f32;
        let mut best = (candidates[0], f32::MAX);
        for &phi in &candidates {
            let program = if forward {
                ptolemy_core::variants::fw_ab(&self.network, phi)?
            } else {
                ptolemy_core::variants::bw_ab(&self.network, phi)?
            };
            let density = self.measured_density(&program)?;
            let err = (density - target).abs();
            if density > 0.0 && err < best.1 {
                best = (phi, err);
            }
        }
        Ok(best.0)
    }

    /// Builds the paper's four algorithm variants — BwCu, BwAb, FwAb and Hybrid —
    /// for this workbench, with θ given and φ calibrated automatically.
    ///
    /// # Errors
    ///
    /// Propagates program construction errors.
    pub fn ptolemy_variants(&self, theta: f32) -> BenchResult<Vec<(String, DetectionProgram)>> {
        use ptolemy_core::variants;
        let phi = self.calibrate_phi(false)?;
        Ok(vec![
            ("BwCu".to_string(), variants::bw_cu(&self.network, theta)?),
            ("BwAb".to_string(), variants::bw_ab(&self.network, phi)?),
            ("FwAb".to_string(), variants::fw_ab(&self.network, phi)?),
            (
                "Hybrid".to_string(),
                variants::hybrid(&self.network, phi, theta)?,
            ),
        ])
    }

    /// Generates one adversarial input set per standard attack, so several variants
    /// and baselines can be scored against identical adversarial samples.
    ///
    /// # Errors
    ///
    /// Propagates attack errors.
    pub fn attack_sets(&self) -> BenchResult<Vec<(String, Vec<Tensor>)>> {
        let limit = self.scale.attack_samples();
        let mut sets = Vec::new();
        for attack in standard_attacks(self.scale) {
            let inputs = self.adversarial_inputs(attack.as_ref(), limit)?;
            sets.push((attack.name().to_string(), inputs));
        }
        Ok(sets)
    }

    /// Detection AUC of a program against every attack in `attacks`, returning
    /// `(attack name, AUC)` pairs — the per-attack breakdown behind the error bars
    /// of Fig. 10.
    ///
    /// # Errors
    ///
    /// Propagates attack and extraction errors.
    pub fn attack_auc_sweep(
        &self,
        program: &DetectionProgram,
        class_paths: &ClassPathSet,
        attacks: &[Box<dyn Attack>],
    ) -> BenchResult<Vec<(String, f32)>> {
        let limit = self.scale.attack_samples();
        let benign = self.benign_inputs(limit);
        let mut results = Vec::with_capacity(attacks.len());
        for attack in attacks {
            let adversarial = self.adversarial_inputs(attack.as_ref(), limit)?;
            let auc = self.detection_auc(program, class_paths, &benign, &adversarial)?;
            results.push((attack.name().to_string(), auc));
        }
        Ok(results)
    }
}

/// Mean, minimum and maximum of a list of per-attack AUCs (the summary Fig. 10
/// reports as bars with error whiskers).
pub fn auc_summary(per_attack: &[(String, f32)]) -> (f32, f32, f32) {
    if per_attack.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let values: Vec<f32> = per_attack.iter().map(|(_, v)| *v).collect();
    let mean = values.iter().sum::<f32>() / values.len() as f32;
    let min = values.iter().copied().fold(f32::INFINITY, f32::min);
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    (mean, min, max)
}

/// The five non-adaptive attacks of the paper's evaluation (Sec. VI-A), covering
/// all three perturbation norms: BIM and FGSM (L∞), CW-L2 and DeepFool (L2) and
/// JSMA (L0).
pub fn standard_attacks(scale: BenchScale) -> Vec<Box<dyn Attack>> {
    let iters = scale.attack_iterations();
    vec![
        Box::new(Bim::new(0.12, 0.02, iters)),
        Box::new(CarliniWagnerL2::new(1.0, 0.05, iters, 0.0)),
        Box::new(DeepFool::new(iters, 0.02)),
        Box::new(Fgsm::new(0.12)),
        Box::new(Jsma::new(0.6, 24)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_core::variants;

    #[test]
    fn standard_attack_suite_matches_the_paper() {
        let attacks = standard_attacks(BenchScale::Quick);
        let names: Vec<&str> = attacks.iter().map(|a| a.name()).collect();
        assert_eq!(attacks.len(), 5);
        for expected in ["FGSM", "BIM", "DeepFool", "JSMA"] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
    }

    #[test]
    fn lenet_workbench_supports_the_full_pipeline() {
        let wb = Workbench::lenet_small(BenchScale::Quick).unwrap();
        assert!(wb.clean_accuracy > 0.5, "accuracy {}", wb.clean_accuracy);
        let program = variants::fw_ab(&wb.network, 0.05).unwrap();
        let class_paths = wb.profile(&program).unwrap();
        assert_eq!(class_paths.num_classes(), wb.dataset.num_classes());

        let benign = wb.benign_inputs(8);
        assert!(!benign.is_empty());
        let adversarial = wb.adversarial_inputs(&Fgsm::new(0.3), 8).unwrap();
        let auc = wb
            .detection_auc(&program, &class_paths, &benign, &adversarial)
            .unwrap();
        assert!((0.0..=1.0).contains(&auc));

        let density = wb.measured_density(&program).unwrap();
        assert!(density > 0.0 && density <= 1.0);
        let report = wb
            .variant_cost(&program, &HardwareConfig::default(), density)
            .unwrap();
        assert!(report.latency_factor() >= 1.0);
    }

    #[test]
    fn serving_engine_honours_the_threshold_and_prices_batches() {
        let wb = Workbench::lenet_small(BenchScale::Quick)
            .unwrap()
            .with_detection_threshold(0.0);
        let program = variants::fw_ab(&wb.network, 0.05).unwrap();
        let class_paths = wb.profile(&program).unwrap();
        let benign = wb.benign_inputs(6);
        let adversarial = wb.adversarial_inputs(&Fgsm::new(0.3), 6).unwrap();

        let engine = wb
            .serving_engine(
                &program,
                &class_paths,
                &benign,
                &adversarial,
                &HardwareConfig::default(),
            )
            .unwrap();
        assert_eq!(engine.threshold(), 0.0);
        assert_eq!(engine.backend_name(), "accel");

        let (verdicts, estimate) = engine.detect_batch_with_estimate(&benign).unwrap();
        assert_eq!(verdicts.len(), benign.len());
        // Threshold 0.0 flags every input, whatever the classifier says.
        assert!(verdicts.iter().all(|v| v.is_adversary));
        assert_eq!(estimate.batch_size, benign.len());
        assert!(estimate.latency_ms.unwrap() > 0.0);
        assert!(estimate.energy_pj.unwrap() > 0.0);
    }
}
