//! `BENCH_<experiment>.json` emission — the machine-readable perf trajectory.
//!
//! Every experiment run writes one schema'd JSON report next to its printed
//! tables: the experiment id, the scale it ran at, its wall time, every named
//! [`Table::metric`], and the deterministic ([`Table::check`]) and advisory
//! ([`Table::timing_check`]) shape-check flags.  CI smoke-runs the registry,
//! diffs the reports against the committed baseline with
//! `scripts/bench_diff.sh` (parity flags exact, timing metrics
//! tolerance-aware, advisory flags never gated) and uploads them as
//! artifacts, so the repository carries its own performance trajectory.
//!
//! The format is deliberately one key per line so that shell tooling can
//! diff it with `grep`/`awk` alone:
//!
//! ```json
//! {
//!   "schema": "ptolemy-bench-v1",
//!   "experiment": "serve_throughput",
//!   "scale": "quick",
//!   "wall_us": 1234567,
//!   "metrics": {
//!     "direct_throughput_milli": 152000
//!   },
//!   "parity": {
//!     "tiered_routing_escalates_and_the_cache_hits_on_duplicates": 1
//!   },
//!   "advisory": {
//!     "served_throughput_direct_loop_at_4_workers": 1
//!   }
//! }
//! ```
//!
//! Reports land in `target/bench/` by default; set `PTOLEMY_BENCH_OUT` to
//! redirect (CI points it at the artifact directory).

use std::io;
use std::path::PathBuf;

use crate::{BenchScale, Table};

/// The report schema identifier; bump when the layout changes incompatibly.
pub const SCHEMA: &str = "ptolemy-bench-v1";

/// The directory reports are written to: `$PTOLEMY_BENCH_OUT` when set,
/// `target/bench` otherwise.
pub fn out_dir() -> PathBuf {
    match std::env::var_os("PTOLEMY_BENCH_OUT") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from("target").join("bench"),
    }
}

/// Sanitises a metric/check label into a stable snake_case JSON key: ASCII
/// alphanumerics kept (lowercased), every other run of characters collapsed
/// to one `_`.  Labels must not embed run-dependent values — the baseline
/// diff matches reports by key.
pub fn key_of(label: &str) -> String {
    let mut key = String::with_capacity(label.len());
    for ch in label.chars() {
        if ch.is_ascii_alphanumeric() {
            key.push(ch.to_ascii_lowercase());
        } else if !key.is_empty() && !key.ends_with('_') {
            key.push('_');
        }
    }
    while key.ends_with('_') {
        key.pop();
    }
    if key.is_empty() {
        key.push('x');
    }
    key
}

/// Collects `(label, value)` pairs into deduplicated `(key, value)` entries;
/// a repeated key gets a `_2`, `_3`, … suffix in encounter order so every
/// recorded value survives into the report.
fn keyed(entries: impl IntoIterator<Item = (String, u64)>) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = Vec::new();
    for (label, value) in entries {
        let base = key_of(&label);
        let mut key = base.clone();
        let mut n = 1usize;
        while out.iter().any(|(existing, _)| *existing == key) {
            n += 1;
            key = format!("{base}_{n}");
        }
        out.push((key, value));
    }
    out
}

fn section(name: &str, entries: &[(String, u64)]) -> String {
    if entries.is_empty() {
        return format!("  \"{name}\": {{}}");
    }
    let body: Vec<String> = entries
        .iter()
        .map(|(key, value)| format!("    \"{key}\": {value}"))
        .collect();
    format!("  \"{name}\": {{\n{}\n  }}", body.join(",\n"))
}

/// Renders the report text for one experiment run (one key per line, stable
/// ordering).  The output is plain JSON — `ptolemy_obs::json::parse` accepts
/// it, and so does any standard parser.
pub fn render(experiment: &str, scale: BenchScale, wall_us: u64, tables: &[Table]) -> String {
    let metrics = keyed(
        tables
            .iter()
            .flat_map(|t| t.metrics().iter().cloned())
            .collect::<Vec<_>>(),
    );
    let flags = |pick: fn(&Table) -> &[(String, bool)]| -> Vec<(String, u64)> {
        keyed(
            tables
                .iter()
                .flat_map(|t| pick(t).iter().cloned())
                .map(|(label, ok)| (label, u64::from(ok)))
                .collect::<Vec<_>>(),
        )
    };
    let parity = flags(Table::checks);
    let advisory = flags(Table::advisory_checks);
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"experiment\": \"{}\",\n  \"scale\": \"{}\",\n  \
         \"wall_us\": {wall_us},\n{},\n{},\n{}\n}}\n",
        key_of(experiment),
        scale.label(),
        section("metrics", &metrics),
        section("parity", &parity),
        section("advisory", &advisory),
    )
}

/// Writes the report for one experiment run to
/// `<out_dir>/BENCH_<experiment>.json` and returns the path.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write(
    experiment: &str,
    scale: BenchScale,
    wall_us: u64,
    tables: &[Table],
) -> io::Result<PathBuf> {
    let dir = out_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{}.json", key_of(experiment)));
    std::fs::write(&path, render(experiment, scale, wall_us, tables))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_obs::json::{self, JsonValue};

    #[test]
    fn keys_are_stable_snake_case() {
        assert_eq!(key_of("wall_us"), "wall_us");
        assert_eq!(
            key_of("served throughput >= direct loop (4 workers)"),
            "served_throughput_direct_loop_4_workers"
        );
        assert_eq!(key_of("BwCu >> BwAb"), "bwcu_bwab");
        assert_eq!(key_of("---"), "x");
    }

    #[test]
    fn duplicate_labels_get_numbered_keys() {
        let entries = keyed(vec![
            ("wall us".into(), 1),
            ("wall_us".into(), 2),
            ("wall-us".into(), 3),
        ]);
        assert_eq!(
            entries,
            vec![
                ("wall_us".to_string(), 1),
                ("wall_us_2".to_string(), 2),
                ("wall_us_3".to_string(), 3)
            ]
        );
    }

    #[test]
    fn report_renders_one_key_per_line_and_parses() {
        let mut table = Table::new("t");
        table.metric("direct_throughput_milli", 1500);
        table.check("fused parity", true);
        table.timing_check("pipelined wins", false);
        let text = render("serve_throughput", BenchScale::Quick, 42, &[table]);
        // One key per line: every quoted key starts its own line.
        for key in ["\"schema\"", "\"wall_us\"", "\"direct_throughput_milli\""] {
            assert_eq!(
                text.lines()
                    .filter(|l| l.trim_start().starts_with(key))
                    .count(),
                1,
                "{key} not on its own line:\n{text}"
            );
        }
        let parsed = json::parse(&text).expect("report parses");
        assert_eq!(
            parsed.get("schema").and_then(JsonValue::as_str),
            Some(SCHEMA)
        );
        assert_eq!(
            parsed.get("experiment").and_then(JsonValue::as_str),
            Some("serve_throughput")
        );
        assert_eq!(
            parsed.get("scale").and_then(JsonValue::as_str),
            Some("quick")
        );
        assert_eq!(parsed.get("wall_us").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(
            parsed
                .get("metrics")
                .and_then(|m| m.get("direct_throughput_milli"))
                .and_then(JsonValue::as_u64),
            Some(1500)
        );
        assert_eq!(
            parsed
                .get("parity")
                .and_then(|p| p.get("fused_parity"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("advisory")
                .and_then(|a| a.get("pipelined_wins"))
                .and_then(JsonValue::as_u64),
            Some(0)
        );
    }

    #[test]
    fn empty_sections_render_as_empty_objects() {
        let text = render("x", BenchScale::Full, 0, &[]);
        let parsed = json::parse(&text).expect("parses");
        assert_eq!(
            parsed.get("scale").and_then(JsonValue::as_str),
            Some("full")
        );
        assert!(matches!(
            parsed.get("metrics"),
            Some(JsonValue::Object(fields)) if fields.is_empty()
        ));
    }
}
