//! Fig. 5a/5b — inter-class path similarity (θ = 0.5).
//!
//! The paper profiles class paths for AlexNet on 10 randomly sampled ImageNet
//! classes and for ResNet-18 on the 10 CIFAR-10 classes and reports that the
//! off-diagonal (inter-class) similarity is low — 36.2 % average on ImageNet,
//! 61.2 % on CIFAR-10 — which is what makes class paths usable as canaries.  The
//! CIFAR similarity is higher because its 10 classes are visually closer.
//!
//! This harness reproduces both matrices on the scaled-down workbenches and prints
//! the average / max / 90th-percentile statistics next to the paper's values.  The
//! shape to check: (1) inter-class similarity is well below 1, and (2) the few-class
//! CIFAR-style dataset shows *higher* similarity than the many-class ImageNet-style
//! dataset.

use ptolemy_core::{class_similarity_matrix, similarity_stats, variants};

use crate::{fmt3, BenchResult, BenchScale, Table, Workbench};

/// Paper values quoted in Sec. III-A.
pub const PAPER_IMAGENET_AVG: f32 = 0.362;
/// Paper value: maximum inter-class similarity for AlexNet @ ImageNet.
pub const PAPER_IMAGENET_MAX: f32 = 0.382;
/// Paper value: average inter-class similarity for ResNet18 @ CIFAR-10.
pub const PAPER_CIFAR_AVG: f32 = 0.612;
/// Paper value: maximum inter-class similarity for ResNet18 @ CIFAR-10.
pub const PAPER_CIFAR_MAX: f32 = 0.651;

fn stats_row(table: &mut Table, name: &str, matrix: &[Vec<f32>]) {
    let stats = similarity_stats(matrix);
    table.row([
        name.to_string(),
        fmt3(stats.average),
        fmt3(stats.max),
        fmt3(stats.p90),
    ]);
}

/// Runs the experiment.
///
/// Besides the two headline workbenches the paper also profiles ResNet-50 on
/// ImageNet as an architecture control (its similarity matches AlexNet's,
/// confirming that the CIFAR/ImageNet gap comes from the datasets, not the
/// networks); this harness adds the same control with the ResNet-class model on a
/// diverse 10-class dataset.
///
/// # Errors
///
/// Propagates workbench construction and profiling errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let theta = 0.5;

    let imagenet = Workbench::alexnet_imagenet(scale)?;
    let cifar = Workbench::resnet_cifar10(scale)?;
    // Architecture control: the same ResNet-class model on a *diverse* (ImageNet-style,
    // non-squeezed) 10-class dataset, mirroring the paper's ResNet50 @ ImageNet row.
    let control_data = ptolemy_data::SyntheticDataset::generate(ptolemy_data::DatasetConfig {
        name: "synth-imagenet-small".into(),
        num_classes: 10,
        shape: vec![3, 8, 8],
        train_per_class: scale.train_per_class(),
        test_per_class: scale.test_per_class(),
        noise: 0.12,
        seed: 0xF1A5,
    })?;
    let mut control_net = ptolemy_nn::zoo::resnet_mini(
        control_data.num_classes(),
        &mut ptolemy_tensor::Rng64::new(0xF1A5),
    )?;
    ptolemy_nn::Trainer::new(ptolemy_nn::TrainConfig {
        epochs: scale.epochs(),
        batch_size: 8,
        learning_rate: 0.002,
        ..ptolemy_nn::TrainConfig::default()
    })
    .fit(&mut control_net, control_data.train())?;

    let mut table = Table::new("Fig. 5 — inter-class path similarity (theta = 0.5)").header([
        "model @ dataset",
        "avg",
        "max",
        "p90",
    ]);

    let program = variants::bw_cu(&imagenet.network, theta)?;
    let set = imagenet.profile(&program)?;
    let imagenet_matrix = class_similarity_matrix(&set)?;
    stats_row(&mut table, &imagenet.name, &imagenet_matrix);

    let program = variants::bw_cu(&cifar.network, theta)?;
    let set = cifar.profile(&program)?;
    let cifar_matrix = class_similarity_matrix(&set)?;
    stats_row(&mut table, &cifar.name, &cifar_matrix);

    let program = variants::bw_cu(&control_net, theta)?;
    let control_set =
        ptolemy_core::Profiler::new(program).profile(&control_net, control_data.train())?;
    let control_matrix = class_similarity_matrix(&control_set)?;
    stats_row(
        &mut table,
        "ResNet18-class @ diverse 10-class control (paper: ResNet50 @ ImageNet)",
        &control_matrix,
    );

    let imagenet_stats = similarity_stats(&imagenet_matrix);
    let cifar_stats = similarity_stats(&cifar_matrix);
    let control_stats = similarity_stats(&control_matrix);
    table.note(format!(
        "paper: ImageNet avg {PAPER_IMAGENET_AVG:.3} (max {PAPER_IMAGENET_MAX:.3}), CIFAR-10 avg {PAPER_CIFAR_AVG:.3} (max {PAPER_CIFAR_MAX:.3}), ResNet50 @ ImageNet avg 0.376"
    ));
    table.check(
        "class paths are distinctive (every average well below 1)",
        imagenet_stats.average < 0.9 && cifar_stats.average < 0.9 && control_stats.average < 0.9,
    );
    table.note(format!(
        "similar-class vs diverse-data average overlap: {} vs {}",
        fmt3(cifar_stats.average),
        fmt3(control_stats.average),
    ));
    table.check(
        "same architecture, similar-class data shows higher overlap than \
         diverse data",
        cifar_stats.average > control_stats.average,
    );
    table.note(format!(
        "cross-architecture comparison (paper's Fig. 5 axes): CIFAR-style {} vs ImageNet-style {}",
        fmt3(cifar_stats.average),
        fmt3(imagenet_stats.average),
    ));
    table.note(format!(
        "clean accuracy: {} {:.2}, {} {:.2}",
        imagenet.name, imagenet.clean_accuracy, cifar.name, cifar.clean_accuracy
    ));

    // Also print the full CIFAR matrix (10×10 like the paper's heat map).
    let mut matrix_table =
        Table::new("Fig. 5b — ResNet18-class @ synth-CIFAR-10 similarity matrix").header(
            std::iter::once("class".to_string())
                .chain((0..cifar_matrix.len()).map(|c| c.to_string())),
        );
    for (i, row) in cifar_matrix.iter().enumerate() {
        matrix_table
            .row(std::iter::once(i.to_string()).chain(row.iter().map(|v| format!("{v:.2}"))));
    }

    Ok(vec![table, matrix_table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn paper_constants_match_the_text() {
        assert!(PAPER_CIFAR_AVG > PAPER_IMAGENET_AVG);
        assert!(PAPER_IMAGENET_MAX > PAPER_IMAGENET_AVG);
        assert!(PAPER_CIFAR_MAX > PAPER_CIFAR_AVG);
    }
}
