//! Sec. VII-A — area overhead and extra DRAM space.
//!
//! Ptolemy's hardware additions are a 32 KB partial-sum/mask SRAM, a 64 KB
//! path-constructor SRAM, the sort/merge/accumulate logic and a comparator per MAC.
//! The paper reports 5.2 % total area overhead (0.08 mm²) over the 20×20/1.5 MB
//! baseline, of which 3.9 % is SRAM, 0.4 % MAC augmentation and 0.9 % other logic.
//! The extra DRAM space is 1.6–2.2 MB for masks (BwAb/FwAb) and 12.8–148 MB for
//! recomputed partial sums (BwCu with the recompute optimisation), scaling with
//! model size but staying tiny next to DRAM capacities.
//!
//! Shape to check: the area overhead is a single-digit percentage dominated by
//! SRAM, and the mask footprint (absolute thresholds) is far below the
//! partial-sum footprint (cumulative thresholds without recompute).

use ptolemy_accel::{area_report, dram_space_report, HardwareConfig};
use ptolemy_compiler::{Compiler, OptimizationFlags};
use ptolemy_core::variants;
use ptolemy_nn::{zoo, Network};
use ptolemy_tensor::Rng64;

use crate::{fmt_percent, BenchResult, BenchScale, Table};

fn model_zoo() -> BenchResult<Vec<(&'static str, Network)>> {
    let mut rng = Rng64::new(0x7A);
    Ok(vec![
        ("AlexNet-class (conv_net)", zoo::conv_net(10, &mut rng)?),
        (
            "ResNet18-class (resnet_mini)",
            zoo::resnet_mini(10, &mut rng)?,
        ),
        ("VGG-class (vgg_mini)", zoo::vgg_mini(10, &mut rng)?),
    ])
}

/// Runs the experiment.
///
/// The DRAM-space analysis is structural (it depends only on layer shapes), so the
/// networks are used untrained.
///
/// # Errors
///
/// Propagates compiler and hardware-model errors.
pub fn run(_scale: BenchScale) -> BenchResult<Vec<Table>> {
    let config = HardwareConfig::default();

    // Area breakdown.
    let area = area_report(&config)?;
    let mut area_table = Table::new("Sec. VII-A — area overhead breakdown").header([
        "component",
        "mm^2",
        "% of baseline",
    ]);
    area_table.row([
        "baseline accelerator".to_string(),
        format!("{:.3}", area.baseline_mm2),
        "-".to_string(),
    ]);
    for (name, mm2) in [
        ("extra SRAM", area.extra_sram_mm2),
        ("MAC augmentation", area.mac_augmentation_mm2),
        ("path constructor", area.path_constructor_mm2),
        ("other logic", area.other_mm2),
    ] {
        area_table.row([
            name.to_string(),
            format!("{mm2:.4}"),
            fmt_percent(100.0 * mm2 / area.baseline_mm2),
        ]);
    }
    area_table.row([
        "total added".to_string(),
        format!("{:.4}", area.added_mm2()),
        fmt_percent(area.overhead_percent()),
    ]);
    area_table.note(
        "paper: 5.2 % total (0.08 mm^2) — 3.9 % SRAM + 0.4 % MAC augmentation + 0.9 % other"
            .to_string(),
    );
    area_table.check(
        "overhead is a single-digit percentage dominated by SRAM",
        area.overhead_percent() < 10.0 && area.extra_sram_mm2 > area.mac_augmentation_mm2,
    );

    // DRAM space per model under absolute thresholds (masks) and cumulative
    // thresholds with and without the recompute optimisation.
    let mut dram_table = Table::new("Sec. VII-A — extra DRAM space (MB)").header([
        "model",
        "BwAb masks",
        "BwCu recompute",
        "BwCu store-all",
    ]);
    let density = 0.05;
    let mut mask_mb = Vec::new();
    let mut store_mb = Vec::new();
    for (name, network) in model_zoo()? {
        let bwab = variants::bw_ab(&network, 0.1)?;
        let bwcu = variants::bw_cu(&network, 0.5)?;
        let masks = {
            let compiled = Compiler::default().compile(&network, &bwab)?;
            dram_space_report(&network, &compiled, &config, density)?
        };
        let recompute = {
            let compiled = Compiler::default().compile(&network, &bwcu)?;
            dram_space_report(&network, &compiled, &config, density)?
        };
        let store = {
            let compiled = Compiler::new(OptimizationFlags {
                recompute_partial_sums: false,
                ..OptimizationFlags::default()
            })
            .compile(&network, &bwcu)?;
            dram_space_report(&network, &compiled, &config, density)?
        };
        mask_mb.push(masks.total_mb());
        store_mb.push(store.total_mb());
        dram_table.row([
            name.to_string(),
            format!("{:.3}", masks.total_mb()),
            format!("{:.3}", recompute.total_mb()),
            format!("{:.3}", store.total_mb()),
        ]);
    }
    dram_table.note("paper: masks need 1.6 MB (AlexNet) / 2.2 MB (ResNet18) / 18.5 MB (VGG19); recomputed partial sums 12.8 / 17.6 / 148 MB".to_string());
    dram_table.check(
        "masks are far smaller than stored partial sums on every model",
        mask_mb.iter().zip(&store_mb).all(|(m, s)| m * 4.0 < *s),
    );
    dram_table.check(
        "footprint grows with model size",
        store_mb.windows(2).all(|w| w[1] >= w[0] * 0.5),
    );

    Ok(vec![area_table, dram_table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_overhead_tracks_the_paper_breakdown() {
        let area = area_report(&HardwareConfig::default()).unwrap();
        assert!(area.overhead_percent() > 2.0 && area.overhead_percent() < 10.0);
        assert!(area.extra_sram_mm2 > area.mac_augmentation_mm2);
    }

    #[test]
    fn model_zoo_has_three_models_of_increasing_size() {
        let zoo = model_zoo().unwrap();
        assert_eq!(zoo.len(), 3);
        let macs: Vec<u64> = zoo.iter().map(|(_, n)| n.total_macs()).collect();
        assert!(macs.iter().all(|&m| m > 0));
    }
}
