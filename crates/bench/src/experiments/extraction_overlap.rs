//! Beyond the paper — streaming extraction: the materialized
//! trace-then-extract pipeline (PR 3) vs the streaming pipeline that overlaps
//! path extraction with the forward pass and drops activations eagerly.
//!
//! The streaming pipeline plugs the extractor into the forward pass as a
//! `TraceSink`: forward programs mask each enabled layer's output the moment
//! the layer finishes (on a worker thread overlapped with the next layer's
//! compute) and release the activation; backward programs retain only the
//! boundaries the reverse walk reads.  Both are bit-for-bit identical to the
//! materialized path — checked here per batch size, not assumed.
//!
//! Shapes to check: streamed end-to-end detection is no slower than the
//! materialized pipeline from batch size ~4 (the acceptance bar), and the
//! streamed peak resident activation bytes are **strictly below** what the
//! materialized trace holds (for forward programs by an order of magnitude —
//! O(largest layer) vs O(network)).

use ptolemy_attacks::Fgsm;
use ptolemy_core::{
    extract_path, extract_paths_streaming_batch, par_map, variants, CoreError, Detection,
    DetectionEngine, DetectionProgram,
};
use ptolemy_obs::Clock;
use ptolemy_tensor::Tensor;

use crate::{fmt3, BenchResult, BenchScale, Table, Workbench};

/// Batch sizes compared (the acceptance bar reads the `>= 4` rows).
const BATCH_SIZES: [usize; 4] = [1, 2, 4, 8];

fn repetitions(scale: BenchScale) -> usize {
    match scale {
        BenchScale::Quick => 40,
        BenchScale::Full => 300,
    }
}

/// Timing rounds per cell: the two pipelines are measured in interleaved
/// rounds and each reports its fastest round, so a scheduler hiccup landing on
/// one side cannot flip a comparison of ~0.1 ms batches.
const TIMING_ROUNDS: usize = 5;

/// Fastest-of-[`TIMING_ROUNDS`] ms per invocation of `work`.
fn best_ms<F: FnMut() -> BenchResult<()>>(reps: usize, mut work: F) -> BenchResult<f64> {
    let clock = Clock::monotonic();
    let per_round = reps.div_ceil(TIMING_ROUNDS);
    let mut best = f64::INFINITY;
    for _ in 0..TIMING_ROUNDS {
        let start_ns = clock.now_ns();
        for _ in 0..per_round {
            work()?;
        }
        let round_ms = clock.now_ns().saturating_sub(start_ns) as f64 / 1e6;
        best = best.min(round_ms / per_round as f64);
    }
    Ok(best)
}

/// The PR 3 pipeline this experiment retires from the hot path: materialize
/// one fused batch trace, then extract each sample's path from the slices.
fn materialized_detect_batch(
    engine: &DetectionEngine,
    inputs: &[Tensor],
) -> BenchResult<Vec<Detection>> {
    let network = engine.network();
    let batch_trace = network.forward_trace_batch(inputs)?;
    let indices: Vec<usize> = (0..inputs.len()).collect();
    let scored = par_map(&indices, |&b| -> Result<(usize, f32), CoreError> {
        let trace = batch_trace.trace(b).map_err(CoreError::from)?;
        let predicted = trace.predicted_class().map_err(CoreError::from)?;
        let path = extract_path(network, &trace, engine.program())?;
        let similarity = path.similarity(engine.class_paths().class_path(predicted)?)?;
        Ok((predicted, similarity))
    });
    let forest = engine.forest().expect("calibrated engine");
    scored
        .into_iter()
        .map(|r| {
            let (predicted_class, similarity) = r?;
            let score = forest.predict_proba(&[similarity])?;
            Ok(Detection {
                is_adversary: score >= engine.threshold(),
                score,
                similarity,
                predicted_class,
            })
        })
        .collect()
}

/// The three acceptance shapes, accumulated across every table and batch size.
struct ShapeChecks {
    latency_ok_at_4: bool,
    parity_everywhere: bool,
    memory_always_lower: bool,
}

fn program_table(
    wb: &Workbench,
    label: &str,
    program: DetectionProgram,
    reps: usize,
    unique: &[Tensor],
    adversarial: &[Tensor],
    checks: &mut ShapeChecks,
) -> BenchResult<Table> {
    let class_paths = wb.profile(&program)?;
    let engine = DetectionEngine::builder(wb.network.clone(), program, class_paths)
        .calibrate(unique, adversarial)
        .build()?;

    let mut table = Table::new(format!(
        "Extraction overlap ({label}) — materialized trace-then-extract vs \
         streaming extraction overlapped with the forward pass"
    ))
    .header([
        "batch size",
        "materialized (ms/batch)",
        "streamed (ms/batch)",
        "speedup",
        "peak bytes (mat)",
        "peak bytes (streamed)",
        "bit parity",
    ]);

    let mut checksum = 0.0f64;
    for &batch_size in &BATCH_SIZES {
        let inputs: Vec<Tensor> = (0..batch_size)
            .map(|i| unique[i % unique.len()].clone())
            .collect();

        // Warm both paths (page in weights, fault in allocations).
        let warm = materialized_detect_batch(&engine, &inputs)?;
        checksum += f64::from(warm[0].score);
        checksum += f64::from(engine.detect_batch(&inputs)?[0].score);

        let mut sink = 0.0f64;
        let materialized_ms = best_ms(reps, || {
            let verdicts = materialized_detect_batch(&engine, &inputs)?;
            sink += f64::from(verdicts[0].similarity);
            Ok(())
        })?;
        let streamed_ms = best_ms(reps, || {
            let verdicts = engine.detect_batch(&inputs)?;
            sink += f64::from(verdicts[0].similarity);
            Ok(())
        })?;
        checksum += sink;

        // Parity: streamed verdicts equal the materialized pipeline's bit for
        // bit (the serving-facing guarantee of the refactor).
        let materialized = materialized_detect_batch(&engine, &inputs)?;
        let streamed = engine.detect_batch(&inputs)?;
        let parity = materialized.iter().zip(&streamed).all(|(m, s)| {
            m.score.to_bits() == s.score.to_bits()
                && m.similarity.to_bits() == s.similarity.to_bits()
                && m.is_adversary == s.is_adversary
                && m.predicted_class == s.predicted_class
        });
        checks.parity_everywhere &= parity;

        // Peak resident activation bytes: streamed footprint vs what the
        // materialized fused trace actually held.
        let footprint =
            extract_paths_streaming_batch(engine.network(), engine.program(), &inputs)?.footprint;
        let trace_bytes = engine
            .network()
            .forward_trace_batch(&inputs)?
            .activation_bytes();
        checks.memory_always_lower &= footprint.peak_streamed_bytes < trace_bytes;

        let speedup = materialized_ms / streamed_ms.max(1e-9);
        // The two pipelines execute identical arithmetic, so "no worse" is a
        // scheduling claim; allow 5% of wall-clock noise before flagging it.
        if batch_size >= 4 && speedup < 0.95 {
            checks.latency_ok_at_4 = false;
        }
        let prefix = label
            .split(',')
            .next()
            .unwrap_or(label)
            .to_ascii_lowercase();
        table.metric(
            format!("{prefix}_materialized_b{batch_size}_us"),
            (materialized_ms * 1000.0) as u64,
        );
        table.metric(
            format!("{prefix}_streamed_b{batch_size}_us"),
            (streamed_ms * 1000.0) as u64,
        );
        table.metric(
            format!("{prefix}_peak_streamed_b{batch_size}_bytes"),
            footprint.peak_streamed_bytes as u64,
        );
        table.row([
            batch_size.to_string(),
            fmt3(materialized_ms as f32),
            fmt3(streamed_ms as f32),
            format!("{speedup:.3}x"),
            trace_bytes.to_string(),
            footprint.peak_streamed_bytes.to_string(),
            if parity { "bit-for-bit" } else { "DIVERGED" }.to_string(),
        ]);
    }
    table.note(format!(
        "{reps} repetitions per cell; checksum {checksum:.3}"
    ));
    Ok(table)
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench, engine and extraction errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::lenet_small(scale)?;
    let unique = wb.benign_inputs(8.max(wb.scale.attack_samples()));
    let adversarial = wb.adversarial_inputs(&Fgsm::new(0.25), unique.len())?;
    let reps = repetitions(scale);

    let mut checks = ShapeChecks {
        latency_ok_at_4: true,
        parity_everywhere: true,
        memory_always_lower: true,
    };

    // The forward program is the paper's Sec. III-C overlap case; the backward
    // program exercises the retention plan.
    let fw = program_table(
        &wb,
        "FwAb, forward program",
        variants::fw_ab(&wb.network, 0.05)?,
        reps,
        &unique,
        &adversarial,
        &mut checks,
    )?;
    let bw = program_table(
        &wb,
        "BwCu, backward program",
        variants::bw_cu(&wb.network, 0.5)?,
        reps,
        &unique,
        &adversarial,
        &mut checks,
    )?;

    let mut summary = Table::new("Extraction overlap — shape checks");
    summary.check(
        "streamed detection is bit-for-bit identical to the materialized \
         pipeline",
        checks.parity_everywhere,
    );
    summary.check(
        "streamed peak resident activation bytes strictly below the \
         materialized trace at every batch size",
        checks.memory_always_lower,
    );
    summary.timing_check(
        "streamed end-to-end detect latency no worse than materialized \
         (within 5% timing noise) at batch size >= 4",
        checks.latency_ok_at_4,
    );
    Ok(vec![fw, bw, summary])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamed_pipeline_is_bit_identical_and_lighter() {
        let tables = run(BenchScale::Quick).unwrap();
        assert_eq!(tables.len(), 3);
        let summary = tables[2].to_string();
        // Deterministic checks: parity and the memory win must hold on any
        // machine.
        assert!(
            summary.contains("materialized pipeline: holds"),
            "bit parity shape check failed:\n{summary}"
        );
        assert!(
            summary.contains("every batch size: holds"),
            "peak-memory shape check failed:\n{summary}"
        );
        // The latency comparison is wall-clock and can lose on a heavily
        // oversubscribed test runner (unoptimized profile, timeshared cores),
        // so in the test it is advisory; the release-built experiment binary
        // is where the acceptance number is read.
        if summary.contains("size >= 4: below expectation") {
            eprintln!(
                "warning: streamed pipeline slower than materialized in this \
                 environment (timing-dependent):\n{summary}"
            );
        }
    }
}
