//! Fig. 13 — detection accuracy against adaptive attacks (AT-n).
//!
//! The adaptive attacker knows exactly how Ptolemy works and generates adversarial
//! samples whose activations imitate a benign input of another class, so that the
//! extracted path resembles a legitimate canary path.  `AT-n` matches the
//! activations of the last *n* weight layers; the more layers the attack considers,
//! the more effective it becomes (lower detection accuracy), but Ptolemy still
//! detects it well above chance — and attacks that only constrain a few layers are
//! *easier* to catch than the standard attacks.
//!
//! Shape to check: detection accuracy decreases as n grows, and AT-n for small n is
//! detected at least as well as the non-adaptive attacks.

use ptolemy_attacks::{AdaptiveAttack, AdaptiveConfig};
use ptolemy_core::variants;

use crate::{auc_summary, fmt3, BenchResult, BenchScale, Table, Workbench};

/// Numbers of trailing layers the adaptive attack constrains (AT-1 … AT-8 on the
/// 8-weight-layer AlexNet-class network).
pub const ADAPTIVE_LAYERS: [usize; 4] = [1, 2, 3, 8];

fn adaptive_attack(
    wb: &Workbench,
    layers: usize,
    scale: BenchScale,
) -> BenchResult<AdaptiveAttack> {
    Ok(AdaptiveAttack::new(
        AdaptiveConfig {
            layers_considered: layers,
            step_size: 0.02,
            iterations: scale.attack_iterations(),
            num_targets: 3,
            seed: 0xADA0 + layers as u64,
        },
        wb.dataset.train().to_vec(),
    )?)
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench and attack errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::alexnet_imagenet(scale)?;
    let limit = (scale.attack_samples() / 2).max(8);
    let benign = wb.benign_inputs(limit);

    let detectors = [
        ("BwCu", variants::bw_cu(&wb.network, 0.5)?),
        (
            "FwAb",
            variants::fw_ab(&wb.network, wb.calibrate_phi(true)?)?,
        ),
    ];

    let mut table = Table::new("Fig. 13 — detection accuracy on adaptive attacks (AlexNet-class)")
        .header(["attack", "BwCu AUC", "FwAb AUC"]);

    let class_paths = [wb.profile(&detectors[0].1)?, wb.profile(&detectors[1].1)?];

    // Non-adaptive reference: mean AUC over the standard attack suite.
    let attack_sets = wb.attack_sets()?;
    let mut reference = Vec::new();
    for (i, (_, program)) in detectors.iter().enumerate() {
        let per_attack: Vec<(String, f32)> = attack_sets
            .iter()
            .map(|(attack, adversarial)| {
                wb.detection_auc(program, &class_paths[i], &benign, adversarial)
                    .map(|a| (attack.clone(), a))
            })
            .collect::<BenchResult<_>>()?;
        let (mean, _, _) = auc_summary(&per_attack);
        reference.push(mean);
    }
    table.row([
        "non-adaptive (mean of 5)".to_string(),
        fmt3(reference[0]),
        fmt3(reference[1]),
    ]);

    // Adaptive attacks AT-n.
    let mut adaptive_aucs: Vec<(usize, f32, f32)> = Vec::new();
    for &layers in &ADAPTIVE_LAYERS {
        let attack = adaptive_attack(&wb, layers, scale)?;
        let adversarial = wb.adversarial_inputs(&attack, limit)?;
        let bwcu = wb.detection_auc(&detectors[0].1, &class_paths[0], &benign, &adversarial)?;
        let fwab = wb.detection_auc(&detectors[1].1, &class_paths[1], &benign, &adversarial)?;
        adaptive_aucs.push((layers, bwcu, fwab));
        table.row([format!("AT{layers}"), fmt3(bwcu), fmt3(fwab)]);
    }

    let strongest = adaptive_aucs.last().copied().unwrap_or((8, 0.0, 0.0));
    let weakest = adaptive_aucs.first().copied().unwrap_or((1, 0.0, 0.0));
    table.note("paper: accuracy decreases as more layers are considered; AT with few layers is easier to detect than existing attacks".to_string());
    table.note(format!(
        "strongest adaptive attack: AT{}; weakest: AT{}",
        strongest.0, weakest.0,
    ));
    table.check(
        "strongest adaptive attack is harder to detect than the weakest",
        strongest.1 <= weakest.1 + 0.05,
    );
    table.check(
        "detection stays above chance on the strongest adaptive attack",
        strongest.1 > 0.5 && strongest.2 > 0.45,
    );
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_attacks::Attack;

    #[test]
    fn at8_is_the_strongest_configured_attack() {
        assert_eq!(*ADAPTIVE_LAYERS.last().unwrap(), 8);
        assert!(ADAPTIVE_LAYERS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn adaptive_attack_builder_produces_a_valid_attack() {
        let wb = Workbench::lenet_small(BenchScale::Quick).unwrap();
        let attack = adaptive_attack(&wb, 2, BenchScale::Quick).unwrap();
        assert_eq!(attack.name(), "Adaptive");
        assert_eq!(attack.config().layers_considered, 2);
    }
}
