//! One module per paper artifact: each exposes `run(scale) -> BenchResult<Table>`
//! (some return several tables) printing the same rows/series as the corresponding
//! figure or table in the paper's evaluation (Sec. VII).
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig05_path_similarity`] | Fig. 5a/5b — inter-class path similarity |
//! | [`tab02_theta_sensitivity`] | Table II — θ sensitivity of BwCu |
//! | [`fig10_accuracy`] | Fig. 10a/10b — accuracy vs EP and CDRP |
//! | [`fig11_latency_energy`] | Fig. 11a/11b — latency/energy vs EP |
//! | [`fig12_deepfense`] | Fig. 12a/12b — DeepFense comparison |
//! | [`fig13_adaptive`] | Fig. 13 — adaptive attacks |
//! | [`fig14_distortion`] | Fig. 14 — accuracy vs adaptive distortion |
//! | [`fig15_similarity_attack`] | Fig. 15 — accuracy vs source/target path similarity |
//! | [`fig16_early_termination`] | Fig. 16a/16b — BwCu early termination |
//! | [`fig17_late_start`] | Fig. 17a/17b — FwAb late start |
//! | [`fig18_hw_sensitivity`] | Fig. 18a/18b — path-constructor provisioning |
//! | [`sec7a_overhead`] | Sec. VII-A — area and DRAM-space overhead |
//! | [`sec7g_scaling`] | Sec. VII-G — 8-bit and 32×32 array variants |
//! | [`sec7h_large_models`] | Sec. VII-H — VGG/Inception/DenseNet results |
//! | [`sec3b_cost_analysis`] | Sec. III-B — software cost analysis |
//! | [`serve_throughput`] | beyond the paper — serving-runtime throughput |
//! | [`batch_fusion`] | beyond the paper — fused batched trace vs per-input loop |
//! | [`extraction_overlap`] | beyond the paper — streaming extraction vs materialized trace |
//! | [`sharded_escalation`] | beyond the paper — sharded, pipelined tier-2 escalation |
//! | [`obs_overhead`] | beyond the paper — observability overhead of the serving runtime |
//! | [`gemm_microkernel`] | beyond the paper — blocked GEMM microkernel vs the naive loop |
//! | [`quantized_detect`] | beyond the paper — int8 quantized detection vs the f32 pipeline |
//! | [`quantized_serve`] | beyond the paper — f32 screen vs int8 screen in the two-tier server |
//! | [`overload_survival`] | beyond the paper — goodput under overload with deadlines, admission and degradation |

pub mod batch_fusion;
pub mod extraction_overlap;
pub mod fig05_path_similarity;
pub mod fig10_accuracy;
pub mod fig11_latency_energy;
pub mod fig12_deepfense;
pub mod fig13_adaptive;
pub mod fig14_distortion;
pub mod fig15_similarity_attack;
pub mod fig16_early_termination;
pub mod fig17_late_start;
pub mod fig18_hw_sensitivity;
pub mod gemm_microkernel;
pub mod obs_overhead;
pub mod overload_survival;
pub mod quantized_detect;
pub mod quantized_serve;
pub mod sec3b_cost_analysis;
pub mod sec7a_overhead;
pub mod sec7g_scaling;
pub mod sec7h_large_models;
pub mod serve_throughput;
pub mod sharded_escalation;
pub mod tab02_theta_sensitivity;

use crate::{BenchResult, BenchScale, Table};

/// Identifier + runner for one experiment, used by the `all_experiments` binary.
pub struct Experiment {
    /// Short identifier (also the name of the binary that runs just this one).
    pub id: &'static str,
    /// The paper artifact this experiment regenerates.
    pub paper_artifact: &'static str,
    /// Runs the experiment and returns its printable tables.
    pub run: fn(BenchScale) -> BenchResult<Vec<Table>>,
}

/// Runs one experiment end to end: times it on the observability clock,
/// writes its `BENCH_<id>.json` perf report (see [`crate::emit`]) and returns
/// the printable tables plus the report path.
///
/// # Errors
///
/// Propagates the experiment's own error, or the report write failure.
pub fn run_and_emit(
    experiment: &Experiment,
    scale: BenchScale,
) -> BenchResult<(Vec<Table>, std::path::PathBuf)> {
    let clock = ptolemy_obs::Clock::monotonic();
    let start_ns = clock.now_ns();
    let tables = (experiment.run)(scale)?;
    let wall_us = clock.now_ns().saturating_sub(start_ns) / 1_000;
    let report = crate::emit::write(experiment.id, scale, wall_us, &tables)?;
    Ok((tables, report))
}

/// Every experiment in the harness, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "sec3b_cost_analysis",
            paper_artifact: "Sec. III-B cost analysis",
            run: sec3b_cost_analysis::run,
        },
        Experiment {
            id: "fig05_path_similarity",
            paper_artifact: "Fig. 5a/5b",
            run: fig05_path_similarity::run,
        },
        Experiment {
            id: "tab02_theta_sensitivity",
            paper_artifact: "Table II",
            run: tab02_theta_sensitivity::run,
        },
        Experiment {
            id: "fig10_accuracy",
            paper_artifact: "Fig. 10a/10b",
            run: fig10_accuracy::run,
        },
        Experiment {
            id: "fig11_latency_energy",
            paper_artifact: "Fig. 11a/11b",
            run: fig11_latency_energy::run,
        },
        Experiment {
            id: "fig12_deepfense",
            paper_artifact: "Fig. 12a/12b",
            run: fig12_deepfense::run,
        },
        Experiment {
            id: "fig13_adaptive",
            paper_artifact: "Fig. 13",
            run: fig13_adaptive::run,
        },
        Experiment {
            id: "fig14_distortion",
            paper_artifact: "Fig. 14",
            run: fig14_distortion::run,
        },
        Experiment {
            id: "fig15_similarity_attack",
            paper_artifact: "Fig. 15",
            run: fig15_similarity_attack::run,
        },
        Experiment {
            id: "fig16_early_termination",
            paper_artifact: "Fig. 16a/16b",
            run: fig16_early_termination::run,
        },
        Experiment {
            id: "fig17_late_start",
            paper_artifact: "Fig. 17a/17b",
            run: fig17_late_start::run,
        },
        Experiment {
            id: "fig18_hw_sensitivity",
            paper_artifact: "Fig. 18a/18b",
            run: fig18_hw_sensitivity::run,
        },
        Experiment {
            id: "sec7a_overhead",
            paper_artifact: "Sec. VII-A",
            run: sec7a_overhead::run,
        },
        Experiment {
            id: "sec7g_scaling",
            paper_artifact: "Sec. VII-G",
            run: sec7g_scaling::run,
        },
        Experiment {
            id: "sec7h_large_models",
            paper_artifact: "Sec. VII-H",
            run: sec7h_large_models::run,
        },
        Experiment {
            id: "serve_throughput",
            paper_artifact: "beyond paper: serving runtime",
            run: serve_throughput::run,
        },
        Experiment {
            id: "batch_fusion",
            paper_artifact: "beyond paper: fused batched trace",
            run: batch_fusion::run,
        },
        Experiment {
            id: "extraction_overlap",
            paper_artifact: "beyond paper: streaming extraction overlap",
            run: extraction_overlap::run,
        },
        Experiment {
            id: "sharded_escalation",
            paper_artifact: "beyond paper: sharded, pipelined tier-2 escalation",
            run: sharded_escalation::run,
        },
        Experiment {
            id: "obs_overhead",
            paper_artifact: "beyond paper: observability overhead of the serving runtime",
            run: obs_overhead::run,
        },
        Experiment {
            id: "gemm_microkernel",
            paper_artifact: "beyond paper: blocked GEMM microkernel raw-speed floor",
            run: gemm_microkernel::run,
        },
        Experiment {
            id: "quantized_detect",
            paper_artifact: "beyond paper: int8 quantized detection path",
            run: quantized_detect::run,
        },
        Experiment {
            id: "quantized_serve",
            paper_artifact: "beyond paper: int8 quantized serving tier",
            run: quantized_serve::run,
        },
        Experiment {
            id: "overload_survival",
            paper_artifact: "beyond paper: overload survival under realistic traffic",
            run: overload_survival::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact_once() {
        let experiments = all();
        assert_eq!(experiments.len(), 24);
        let mut ids: Vec<&str> = experiments.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 24, "duplicate experiment ids");
        assert!(experiments.iter().all(|e| !e.paper_artifact.is_empty()));
    }
}
