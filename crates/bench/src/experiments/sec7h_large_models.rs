//! Sec. VII-H — results on additional, larger models.
//!
//! The paper checks that the important-neuron/class-path structure is not an
//! AlexNet/ResNet artifact: VGG-16 and Inception-V4 show inter-class path
//! similarities of only 41.5 % and 28.8 % on ImageNet, DenseNet reaches 100 %
//! detection at 0 % false positives (beating NIC's 96 %/3.8 %), and ResNet-50 with
//! BwCu reaches 0.900 AUC vs EP's 0.898.
//!
//! Shape to check: class paths stay distinctive (inter-class similarity well
//! below 1) on every extra architecture, and the detection accuracy on the
//! DenseNet-class and ResNet-class models stays high with a low false-positive
//! rate.

use ptolemy_attacks::{Attack, Bim, Fgsm};
use ptolemy_baselines::{BaselineDetector, EpDefense};
use ptolemy_core::{class_similarity_matrix, path_similarity, similarity_stats, variants};
use ptolemy_data::{DatasetConfig, SyntheticDataset};
use ptolemy_forest::auc;
use ptolemy_nn::{zoo, Network, TrainConfig, Trainer};
use ptolemy_tensor::{Rng64, Tensor};

use crate::{fmt3, fmt_percent, BenchResult, BenchScale, Table};

struct TrainedModel {
    name: &'static str,
    network: Network,
    dataset: SyntheticDataset,
}

fn train_model(
    name: &'static str,
    build: impl Fn(usize, &mut Rng64) -> ptolemy_nn::Result<Network>,
    shape: &[usize],
    scale: BenchScale,
    seed: u64,
) -> BenchResult<TrainedModel> {
    let dataset = SyntheticDataset::generate(DatasetConfig {
        name: name.to_string(),
        num_classes: 8,
        shape: shape.to_vec(),
        train_per_class: scale.train_per_class(),
        test_per_class: scale.test_per_class(),
        noise: 0.12,
        seed,
    })?;
    let mut network = build(dataset.num_classes(), &mut Rng64::new(seed))?;
    Trainer::new(TrainConfig {
        epochs: scale.epochs(),
        batch_size: 8,
        learning_rate: 0.002,
        ..TrainConfig::default()
    })
    .fit(&mut network, dataset.train())?;
    Ok(TrainedModel {
        name,
        network,
        dataset,
    })
}

fn detection_scores(
    model: &TrainedModel,
    adversarial: &[Tensor],
    benign: &[Tensor],
) -> BenchResult<(f32, f32, f32)> {
    let program = variants::bw_cu(&model.network, 0.5)?;
    let class_paths = ptolemy_core::Profiler::new(program.clone())
        .profile(&model.network, model.dataset.train())?;
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for (inputs, label) in [(benign, false), (adversarial, true)] {
        for input in inputs {
            let (_, s) = path_similarity(&model.network, &program, &class_paths, input)?;
            scores.push(1.0 - s);
            labels.push(label);
        }
    }
    let auc_value = auc(&scores, &labels)?;
    // Detection rate / FPR at the median-benign-score threshold (the operating point
    // NIC-style comparisons use).
    let mut benign_sorted: Vec<f32> = scores[..benign.len()].to_vec();
    benign_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let threshold = benign_sorted[benign_sorted.len() * 9 / 10];
    let tp = scores[benign.len()..]
        .iter()
        .filter(|s| **s > threshold)
        .count() as f32;
    let fp = scores[..benign.len()]
        .iter()
        .filter(|s| **s > threshold)
        .count() as f32;
    Ok((
        auc_value,
        tp / adversarial.len() as f32,
        fp / benign.len() as f32,
    ))
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates dataset, training, attack and extraction errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    // Inter-class path similarity on the VGG-class and Inception-class models.
    let vgg = train_model(
        "synth-imagenet-vgg",
        zoo::vgg_mini,
        &[3, 16, 16],
        scale,
        0x7E1,
    )?;
    let inception = train_model(
        "synth-imagenet-inception",
        zoo::inception_mini,
        &[3, 16, 16],
        scale,
        0x7E2,
    )?;

    let mut similarity_table =
        Table::new("Sec. VII-H — inter-class path similarity on larger models").header([
            "model",
            "avg",
            "max",
            "p90",
            "paper avg",
        ]);
    let mut similarity_distinctive = true;
    for (model, paper) in [(&vgg, "0.415"), (&inception, "0.288")] {
        let program = variants::bw_cu(&model.network, 0.5)?;
        let set =
            ptolemy_core::Profiler::new(program).profile(&model.network, model.dataset.train())?;
        let stats = similarity_stats(&class_similarity_matrix(&set)?);
        similarity_distinctive &= stats.average < 0.95;
        similarity_table.row([
            model.name.to_string(),
            fmt3(stats.average),
            fmt3(stats.max),
            fmt3(stats.p90),
            paper.to_string(),
        ]);
    }
    similarity_table.check(
        "class paths stay distinctive (average inter-class similarity clearly \
         below 1) on both models",
        similarity_distinctive,
    );

    // DenseNet-class detection accuracy / FPR and ResNet-class BwCu-vs-EP AUC.
    let densenet = train_model(
        "synth-cifar-densenet",
        zoo::densenet_mini,
        &[3, 8, 8],
        scale,
        0x7E3,
    )?;
    let resnet = train_model(
        "synth-imagenet-resnet50",
        zoo::resnet_mini,
        &[3, 8, 8],
        scale,
        0x7E4,
    )?;

    let mut detection_table =
        Table::new("Sec. VII-H — detection on DenseNet-class and ResNet50-class stand-ins")
            .header(["model", "AUC", "detection rate", "FPR", "paper"]);

    let limit = scale.attack_samples();
    for (model, attack, paper) in [
        (
            &densenet,
            Box::new(Bim::new(0.15, 0.03, scale.attack_iterations())) as Box<dyn Attack>,
            "100 % detection @ 0 % FPR (vs NIC 96 % @ 3.8 %)",
        ),
        (
            &resnet,
            Box::new(Fgsm::new(0.15)) as Box<dyn Attack>,
            "BwCu AUC 0.900 vs EP 0.898",
        ),
    ] {
        let benign: Vec<Tensor> = model
            .dataset
            .test()
            .iter()
            .filter(|(x, y)| model.network.predict(x).map(|p| p == *y).unwrap_or(false))
            .take(limit)
            .map(|(x, _)| x.clone())
            .collect();
        let mut adversarial = Vec::new();
        let mut fallback = Vec::new();
        for (input, label) in model.dataset.test().iter().take(limit) {
            if model.network.predict(input)? != *label {
                continue;
            }
            let example = attack.perturb(&model.network, input, *label)?;
            if example.success {
                adversarial.push(example.input);
            } else {
                fallback.push(example.input);
            }
        }
        if adversarial.len() < 4 {
            adversarial.extend(fallback);
        }
        if adversarial.is_empty() {
            return Err("no adversarial samples generated for the large-model study".into());
        }
        let (auc_value, detection, fpr) = detection_scores(model, &adversarial, &benign)?;
        detection_table.row([
            model.name.to_string(),
            fmt3(auc_value),
            fmt_percent(100.0 * f64::from(detection)),
            fmt_percent(100.0 * f64::from(fpr)),
            paper.to_string(),
        ]);
    }

    // ResNet50-class: BwCu vs EP head-to-head.
    let ep = EpDefense::fit(&resnet.network, resnet.dataset.train(), 0.5)?;
    let benign: Vec<Tensor> = resnet
        .dataset
        .test()
        .iter()
        .filter(|(x, y)| resnet.network.predict(x).map(|p| p == *y).unwrap_or(false))
        .take(limit)
        .map(|(x, _)| x.clone())
        .collect();
    let mut adversarial = Vec::new();
    for (input, label) in resnet.dataset.test().iter().take(limit) {
        if resnet.network.predict(input)? != *label {
            continue;
        }
        adversarial.push(
            Fgsm::new(0.15)
                .perturb(&resnet.network, input, *label)?
                .input,
        );
    }
    let (ptolemy_auc, _, _) = detection_scores(&resnet, &adversarial, &benign)?;
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for input in &benign {
        scores.push(ep.score(&resnet.network, input)?);
        labels.push(false);
    }
    for input in &adversarial {
        scores.push(ep.score(&resnet.network, input)?);
        labels.push(true);
    }
    let ep_auc = auc(&scores, &labels)?;
    detection_table.note(format!(
        "ResNet50-class BwCu AUC {} vs EP {} (paper: 0.900 vs 0.898)",
        fmt3(ptolemy_auc),
        fmt3(ep_auc),
    ));
    detection_table.check(
        "ResNet50-class Ptolemy AUC >= EP - 0.03",
        ptolemy_auc + 0.03 >= ep_auc,
    );

    Ok(vec![similarity_table, detection_table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_model_constructors_produce_distinct_depths() {
        let mut rng = Rng64::new(1);
        let vgg = zoo::vgg_mini(4, &mut rng).unwrap();
        let inception = zoo::inception_mini(4, &mut rng).unwrap();
        let densenet = zoo::densenet_mini(4, &mut rng).unwrap();
        for net in [&vgg, &inception, &densenet] {
            assert!(net.weight_layer_indices().len() >= 5);
        }
    }
}
