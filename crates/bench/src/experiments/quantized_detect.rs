//! Beyond the paper — int8 quantized detection: the f32 detection pipeline vs
//! the same engine running its forward passes through the int8
//! [`ptolemy_nn::QuantizedNetwork`].
//!
//! Quantization is the one kernel change in this workspace that is **not**
//! bit-parity-pinned: per-layer symmetric scales round activations and
//! weights to 8 bits, so logits (and occasionally verdicts near the decision
//! boundary) may move.  Its contract is therefore statistical, and this
//! experiment is where that contract is enforced: verdict/class agreement
//! with the f32 path and the detection-AUC delta are **hard gates** (the
//! whole pipeline is seeded and the int8 accumulation is exact i32, so these
//! numbers are machine-independent), while the int8-vs-f32 forward speedup
//! is advisory wall-clock shape.

use ptolemy_attacks::Fgsm;
use ptolemy_core::{variants, DetectionEngine};
use ptolemy_obs::Clock;

use crate::{fmt3, BenchResult, BenchScale, Table, Workbench};

/// Minimum fraction of inputs on which the quantized verdict must agree with
/// the f32 verdict.
const MIN_VERDICT_AGREEMENT: f64 = 0.75;
/// Minimum fraction of inputs on which the predicted class must agree.
const MIN_CLASS_AGREEMENT: f64 = 0.85;
/// Maximum tolerated drop in detection AUC (1 - similarity scores).
const MAX_AUC_DROP: f64 = 0.15;

fn repetitions(scale: BenchScale) -> usize {
    match scale {
        BenchScale::Quick => 40,
        BenchScale::Full => 250,
    }
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench, engine, quantization and detection errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::lenet_small(scale)?;
    let program = variants::bw_cu(&wb.network, 0.5)?;
    let class_paths = wb.profile(&program)?;
    let benign = wb.benign_inputs(8.max(wb.scale.attack_samples()));
    let adversarial = wb.adversarial_inputs(&Fgsm::new(0.25), benign.len())?;
    let engine = DetectionEngine::builder(wb.network.clone(), program, class_paths)
        .calibrate(&benign, &adversarial)
        .quantized(&benign)
        .build()?;
    let reps = repetitions(scale);

    let mut table = Table::new(
        "Quantized detection — f32 pipeline vs int8 QuantizedNetwork forward \
         passes inside the same engine",
    )
    .header(["measure", "f32", "int8", "delta"]);

    // Agreement + AUC over the full benign/adversarial evaluation set.
    let mut verdict_agree = 0usize;
    let mut class_agree = 0usize;
    let mut f32_scores = Vec::new();
    let mut int8_scores = Vec::new();
    let mut labels = Vec::new();
    for (inputs, is_adv) in [(&benign, false), (&adversarial, true)] {
        for input in inputs.iter() {
            let full = engine.detect(input)?;
            let quant = engine.detect_quantized(input)?;
            verdict_agree += usize::from(full.is_adversary == quant.is_adversary);
            class_agree += usize::from(full.predicted_class == quant.predicted_class);
            // ROC scores: higher = more suspicious, so 1 - path similarity.
            f32_scores.push(1.0 - engine.path_similarity(input)?.1);
            int8_scores.push(1.0 - engine.path_similarity_quantized(input)?.1);
            labels.push(is_adv);
        }
    }
    let total = labels.len();
    let verdict_rate = verdict_agree as f64 / total as f64;
    let class_rate = class_agree as f64 / total as f64;
    let auc_f32 = f64::from(ptolemy_forest::auc(&f32_scores, &labels)?);
    let auc_int8 = f64::from(ptolemy_forest::auc(&int8_scores, &labels)?);
    let auc_drop = auc_f32 - auc_int8;

    // Forward-pass latency: the quantized network's i8 kernels vs the f32
    // network, over the same inputs.  Checksummed so nothing is elided.
    let qnet = engine
        .quantized_network()
        .ok_or("engine built without a quantized network")?;
    let clock = Clock::monotonic();
    let mut checksum = 0.0f64;
    checksum += f64::from(wb.network.forward(&benign[0])?.sum());
    checksum += f64::from(qnet.forward(&benign[0])?.sum());

    let start_ns = clock.now_ns();
    for _ in 0..reps {
        for input in &benign {
            checksum += f64::from(wb.network.forward(input)?.sum());
        }
    }
    let f32_us =
        clock.now_ns().saturating_sub(start_ns) as f64 / 1e3 / (reps * benign.len()) as f64;

    let start_ns = clock.now_ns();
    for _ in 0..reps {
        for input in &benign {
            checksum += f64::from(qnet.forward(input)?.sum());
        }
    }
    let int8_us =
        clock.now_ns().saturating_sub(start_ns) as f64 / 1e3 / (reps * benign.len()) as f64;

    // Determinism: the int8 path accumulates in exact i32, so repeated
    // detections must be bit-identical (this is what makes the agreement and
    // AUC gates above stable enough to gate on).
    let deterministic = benign.iter().chain(&adversarial).all(|input| {
        match (
            engine.detect_quantized(input),
            engine.detect_quantized(input),
        ) {
            (Ok(x), Ok(y)) => {
                x.score.to_bits() == y.score.to_bits()
                    && x.similarity.to_bits() == y.similarity.to_bits()
                    && x.predicted_class == y.predicted_class
            }
            _ => false,
        }
    });

    table.row([
        "verdict agreement".to_string(),
        "1.000".to_string(),
        fmt3(verdict_rate as f32),
        fmt3((1.0 - verdict_rate) as f32),
    ]);
    table.row([
        "class agreement".to_string(),
        "1.000".to_string(),
        fmt3(class_rate as f32),
        fmt3((1.0 - class_rate) as f32),
    ]);
    table.row([
        "detection AUC".to_string(),
        fmt3(auc_f32 as f32),
        fmt3(auc_int8 as f32),
        fmt3(auc_drop as f32),
    ]);
    table.row([
        "forward latency (us)".to_string(),
        fmt3(f32_us as f32),
        fmt3(int8_us as f32),
        format!("{:.2}x", f32_us / int8_us.max(1e-9)),
    ]);

    table.metric("verdict_agreement_permille", (verdict_rate * 1000.0) as u64);
    table.metric("class_agreement_permille", (class_rate * 1000.0) as u64);
    table.metric("auc_f32_milli", (auc_f32 * 1000.0) as u64);
    table.metric("auc_int8_milli", (auc_int8 * 1000.0) as u64);
    table.metric("forward_f32_us", f32_us as u64);
    table.metric("forward_int8_us", int8_us as u64);
    table.metric("quantized_layers", qnet.num_quantized_layers() as u64);

    table.note(format!(
        "{total} evaluation inputs ({} benign, {} adversarial); {reps} timing reps; \
         checksum {checksum:.3}",
        benign.len(),
        adversarial.len()
    ));
    table.check(
        "quantized detection is bit-deterministic across repeated calls",
        deterministic,
    );
    table.check(
        "int8 verdicts agree with f32 on >= 75% of inputs",
        verdict_rate >= MIN_VERDICT_AGREEMENT,
    );
    table.check(
        "int8 predicted classes agree with f32 on >= 85% of inputs",
        class_rate >= MIN_CLASS_AGREEMENT,
    );
    table.check(
        "int8 detection AUC within 0.15 of the f32 pipeline",
        auc_drop <= MAX_AUC_DROP,
    );
    table.timing_check(
        "int8 forward pass is no slower than 1.5x the f32 forward pass",
        int8_us <= f32_us * 1.5,
    );
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantized_path_holds_its_statistical_contract() {
        let tables = run(BenchScale::Quick).unwrap();
        assert_eq!(tables.len(), 1);
        let rendered = tables[0].to_string();
        for gate in [
            "repeated calls: holds",
            ">= 75% of inputs: holds",
            ">= 85% of inputs: holds",
            "f32 pipeline: holds",
        ] {
            assert!(rendered.contains(gate), "gate `{gate}` failed:\n{rendered}");
        }
        // The latency comparison is wall-clock and advisory under the
        // unoptimized test profile.
        if rendered.contains("below expectation") {
            eprintln!("warning: timing shape check missed in this environment:\n{rendered}");
        }
    }
}
