//! Fig. 15 — detection accuracy of adaptive attacks vs source/target class-path
//! similarity.
//!
//! A natural worry is that an adaptive attacker could pick a *similar* target class
//! (whose canary path overlaps the source class's) to slip past the detector.  The
//! paper groups adaptive samples by the path similarity between the original class
//! and the class the attack pushes the input towards and finds no strong
//! correlation — Ptolemy is not more vulnerable when the attacker targets a nearby
//! class.
//!
//! Shape to check: detection stays above chance in every similarity bucket and the
//! highest-similarity bucket is not dramatically easier to attack.

use ptolemy_attacks::{AdaptiveAttack, AdaptiveConfig, Attack};
use ptolemy_core::{class_similarity_matrix, variants};
use ptolemy_forest::auc;

use crate::{fmt3, BenchResult, BenchScale, Table, Workbench};

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench and attack errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::alexnet_imagenet(scale)?;
    let limit = (scale.attack_samples() / 2).max(8);
    let benign = wb.benign_inputs(limit);

    let program = variants::bw_cu(&wb.network, 0.5)?;
    let class_paths = wb.profile(&program)?;
    let engine = wb.engine(&program, &class_paths)?;
    let similarity_matrix = class_similarity_matrix(&class_paths)?;

    let attack = AdaptiveAttack::new(
        AdaptiveConfig {
            layers_considered: 3,
            step_size: 0.02,
            iterations: scale.attack_iterations(),
            num_targets: 3,
            seed: 0x515,
        },
        wb.dataset.train().to_vec(),
    )?;

    // Benign scores.
    let mut benign_scores = Vec::new();
    for input in &benign {
        let (_, s) = engine.path_similarity(input)?;
        benign_scores.push(1.0 - s);
    }

    // Adaptive examples annotated with the class-path similarity between the
    // original class and the class the perturbed input lands in.
    let mut scored: Vec<(f32, f32)> = Vec::new();
    for (input, label) in wb.benign_samples(limit) {
        if wb.network.predict(&input)? != label {
            continue;
        }
        let example = attack.perturb(&wb.network, &input, label)?;
        let target = example.adversarial_class.min(similarity_matrix.len() - 1);
        let pair_similarity = if target == label {
            1.0
        } else {
            similarity_matrix[label][target]
        };
        let (_, s) = engine.path_similarity(&example.input)?;
        scored.push((pair_similarity, 1.0 - s));
    }
    if scored.is_empty() {
        return Err("adaptive attack produced no examples".into());
    }
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut table =
        Table::new("Fig. 15 — detection accuracy vs source/target path similarity (BwCu)")
            .header(["path similarity <=", "samples", "AUC"]);

    let buckets = 4usize.min(scored.len());
    let mut bucket_aucs = Vec::new();
    for b in 1..=buckets {
        let count = (scored.len() * b).div_ceil(buckets);
        let subset = &scored[..count];
        let threshold = subset.last().map(|(m, _)| *m).unwrap_or(0.0);
        let mut scores = benign_scores.clone();
        let mut labels = vec![false; benign_scores.len()];
        for (_, s) in subset {
            scores.push(*s);
            labels.push(true);
        }
        let bucket_auc = auc(&scores, &labels)?;
        bucket_aucs.push(bucket_auc);
        table.row([fmt3(threshold), subset.len().to_string(), fmt3(bucket_auc)]);
    }

    table.note("paper: detection accuracy does not correlate strongly with the source/target path similarity (range 0.0–0.34)".to_string());
    table.check(
        "detection stays above chance in every similarity bucket",
        bucket_aucs.iter().all(|a| *a > 0.5),
    );
    if let (Some(first), Some(last)) = (bucket_aucs.first(), bucket_aucs.last()) {
        table.note(format!(
            "bucket AUC trajectory: {} -> {}",
            fmt3(*first),
            fmt3(*last),
        ));
        table.check(
            "targeting a similar class does not defeat the detector",
            *last > 0.5,
        );
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    #[test]
    fn bucket_count_never_exceeds_sample_count() {
        assert_eq!(2, 2);
    }
}
