//! Beyond the paper — serving-runtime throughput: a direct single-engine
//! `detect` loop vs the `ptolemy-serve` `Server` (multi-worker queue, adaptive
//! batching, FwAb→BwCu tiered routing, path-prefix result cache), varying the
//! worker count and batch latency budget.
//!
//! The workload repeats every input `DUPLICATION` times, interleaved — the
//! retry/replay redundancy real traffic exhibits — so the path-prefix cache
//! has duplicates to hit and the run is long enough to amortise the batch
//! former's trailing latency budget.
//!
//! Shape to check: served throughput overtakes the direct loop once enough
//! workers are attached (the acceptance bar is ≥ 4), and the stats snapshot
//! reports nonzero tier-2 escalations and cache hits on this workload.

use std::sync::Arc;
use std::time::Duration;

use ptolemy_attacks::Fgsm;
use ptolemy_core::{variants, DetectionEngine};
use ptolemy_obs::Clock;
use ptolemy_serve::{BatchPolicy, CacheConfig, Server, ServerBuilder, Ticket};

use crate::{fmt3, BenchResult, BenchScale, Table, Workbench};

/// Escalation band: screening scores in this range re-score on the BwCu tier.
const BAND: (f32, f32) = (0.3, 0.7);

/// How many times each unique input repeats in the served stream.
const DUPLICATION: usize = 10;

fn throughput(count: usize, elapsed: Duration) -> f64 {
    count as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench, engine and server errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::lenet_small(scale)?;
    let phi = wb.calibrate_phi(true)?;
    let screen_program = variants::fw_ab(&wb.network, phi)?;
    let expensive_program = variants::bw_cu(&wb.network, 0.5)?;
    let screen_paths = wb.profile(&screen_program)?;
    let expensive_paths = wb.profile(&expensive_program)?;

    let limit = wb.scale.attack_samples();
    let benign = wb.benign_inputs(limit);
    let adversarial = wb.adversarial_inputs(&Fgsm::new(0.25), limit)?;

    let screen = Arc::new(
        DetectionEngine::builder(wb.network.clone(), screen_program, screen_paths)
            .calibrate(&benign, &adversarial)
            .build()?,
    );
    let expensive = Arc::new(
        DetectionEngine::builder(wb.network.clone(), expensive_program, expensive_paths)
            .calibrate(&benign, &adversarial)
            .build()?,
    );

    // Mixed stream with duplicates, interleaved.
    let mut workload = Vec::new();
    for _ in 0..DUPLICATION {
        for (b, a) in benign.iter().zip(&adversarial) {
            workload.push(b.clone());
            workload.push(a.clone());
        }
    }

    // Baseline: the sequential single-engine detect loop every pre-serve
    // caller hand-rolled.
    let clock = Clock::monotonic();
    let start_ns = clock.now_ns();
    for input in &workload {
        screen.detect(input)?;
    }
    let direct = throughput(
        workload.len(),
        Duration::from_nanos(clock.now_ns().saturating_sub(start_ns)),
    );

    let mut total_escalated = 0u64;
    let mut total_cache_hits = 0u64;
    let mut table = Table::new(
        "Serving throughput — direct FwAb detect loop vs ptolemy-serve \
         (FwAb screen → BwCu escalation, path-prefix cache)",
    )
    .header([
        "configuration",
        "throughput (inputs/s)",
        "vs direct",
        "escalated",
        "cache hit rate",
        "p50 ms",
        "p99 ms",
    ]);
    table.metric("direct_throughput_milli", (direct * 1000.0) as u64);
    table.row([
        "direct detect loop".to_string(),
        fmt3(direct as f32),
        "1.000x".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);

    let configs: &[(usize, u64)] = &[(1, 2), (2, 2), (4, 2), (4, 1), (8, 2)];
    let mut four_worker_speedup = 0.0f64;
    let mut saw_escalations = false;
    let mut saw_cache_hits = false;
    for &(workers, budget_ms) in configs {
        let builder: ServerBuilder = Server::builder(screen.clone())
            .escalate(expensive.clone(), BAND.0, BAND.1)
            .workers(workers)
            .queue_capacity(workload.len().max(1))
            .batch_policy(BatchPolicy {
                max_batch: 16,
                latency_budget: Duration::from_millis(budget_ms),
                ..BatchPolicy::default()
            })
            .cache(CacheConfig::default());
        let server = builder.start()?;

        let start_ns = clock.now_ns();
        let tickets: Vec<Ticket> = workload
            .iter()
            .map(|input| server.submit(input.clone()))
            .collect::<Result<_, _>>()?;
        for ticket in tickets {
            ticket.wait()?;
        }
        let served = throughput(
            workload.len(),
            Duration::from_nanos(clock.now_ns().saturating_sub(start_ns)),
        );
        let stats = server.shutdown();
        let speedup = served / direct;
        if workers >= 4 {
            four_worker_speedup = four_worker_speedup.max(speedup);
        }
        saw_escalations |= stats.escalated > 0;
        saw_cache_hits |= stats.cache_hits > 0;
        total_escalated += stats.escalated;
        total_cache_hits += stats.cache_hits;
        table.metric(
            format!("served_{workers}w_{budget_ms}ms_throughput_milli"),
            (served * 1000.0) as u64,
        );

        table.row([
            format!("served: {workers} workers, {budget_ms} ms budget"),
            fmt3(served as f32),
            format!("{speedup:.3}x"),
            stats.escalated.to_string(),
            format!("{:.2}", stats.cache_hit_rate()),
            format!("{:.2}", stats.p50_latency_ms),
            format!("{:.2}", stats.p99_latency_ms),
        ]);
    }

    table.note(format!(
        "workload: {} inputs ({} unique, {DUPLICATION}x duplication); escalation band [{}, {}]",
        workload.len(),
        workload.len() / DUPLICATION,
        BAND.0,
        BAND.1
    ));
    table.metric("total_escalated", total_escalated);
    table.metric("total_cache_hits", total_cache_hits);
    table.timing_check(
        "served throughput >= direct loop at >= 4 workers",
        four_worker_speedup >= 1.0,
    );
    table.check(
        "tiered routing escalates and the cache hits on duplicates",
        saw_escalations && saw_cache_hits,
    );
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_beats_the_direct_loop_with_enough_workers() {
        let tables = run(BenchScale::Quick).unwrap();
        assert_eq!(tables.len(), 1);
        let rendered = tables[0].to_string();
        // Deterministic check: tiered routing escalates and the cache hits on
        // the duplicated workload, whatever the machine.
        assert!(
            rendered.contains("cache hits on duplicates: holds"),
            "routing/cache shape check failed:\n{rendered}"
        );
        // The throughput comparison is wall-clock and can lose on a heavily
        // oversubscribed test runner (unoptimized profile, timeshared cores),
        // so in the test it is advisory; the release-built experiment binary
        // is where the acceptance number is read.
        if rendered.contains("at >= 4 workers: below expectation") {
            eprintln!(
                "warning: served throughput below the direct loop in this \
                 environment (timing-dependent):\n{rendered}"
            );
        }
        assert_eq!(tables[0].checks().len(), 1);
        assert_eq!(tables[0].advisory_checks().len(), 1);
        assert!(!tables[0].metrics().is_empty());
    }
}
