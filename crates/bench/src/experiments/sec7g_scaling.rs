//! Sec. VII-G — scalability to different precisions and array sizes.
//!
//! Beyond the Fig. 18 path-constructor sweeps, the paper checks that the design
//! scales to an 8-bit datapath (area overhead 5.2 % → 5.5 %, FwAb latency overhead
//! unchanged at 2.1 %, energy overhead 16 % → 33 %) and to a 32×32 MAC array (area
//! overhead 6.4 %, FwAb 4.4 % latency / 16.4 % energy overhead).
//!
//! Shape to check: FwAb's latency overhead stays small in every configuration, and
//! the area overhead remains single-digit.

use ptolemy_accel::{area_report, HardwareConfig};
use ptolemy_core::variants;

use crate::{fmt_percent, BenchResult, BenchScale, Table, Workbench};

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench, compiler and hardware-model errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::alexnet_imagenet(scale)?;
    let phi = wb.calibrate_phi(true)?;
    let program = variants::fw_ab(&wb.network, phi)?;
    let density = wb.measured_density(&program)?;

    let configs = [
        ("16-bit, 20x20 (default)", HardwareConfig::default()),
        ("8-bit, 20x20", HardwareConfig::default().with_precision(8)),
        (
            "16-bit, 32x32",
            HardwareConfig::default().with_array(32, 32),
        ),
    ];
    let paper = [
        "paper: 2.1 % latency / 16.0 % energy, 5.2 % area",
        "paper: 2.1 % latency / 33.0 % energy, 5.5 % area",
        "paper: 4.4 % latency / 16.4 % energy, 6.4 % area",
    ];

    let mut table =
        Table::new("Sec. VII-G — FwAb under different hardware configurations").header([
            "configuration",
            "latency overhead",
            "energy overhead",
            "area overhead",
            "paper",
        ]);

    let mut latency_overheads = Vec::new();
    let mut area_overheads = Vec::new();
    for ((name, config), note) in configs.iter().zip(paper) {
        let report = wb.variant_cost(&program, config, density)?;
        let area = area_report(config)?;
        latency_overheads.push(report.latency_overhead());
        area_overheads.push(area.overhead_percent());
        table.row([
            name.to_string(),
            fmt_percent(100.0 * report.latency_overhead()),
            fmt_percent(100.0 * report.energy_overhead()),
            fmt_percent(area.overhead_percent()),
            note.to_string(),
        ]);
    }

    table.check(
        "FwAb latency overhead stays below 25 % in every configuration",
        latency_overheads.iter().all(|o| *o < 0.25),
    );
    table.check(
        "area overhead stays single-digit in every configuration",
        area_overheads.iter().all(|a| *a < 10.0),
    );
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternative_configurations_are_valid() {
        HardwareConfig::default()
            .with_precision(8)
            .validate()
            .unwrap();
        HardwareConfig::default()
            .with_array(32, 32)
            .validate()
            .unwrap();
    }
}
