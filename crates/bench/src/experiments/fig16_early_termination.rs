//! Fig. 16a/16b — early termination of backward extraction (BwCu).
//!
//! Backward extraction can stop before reaching the first layer.  The paper sweeps
//! the termination layer of the 8-layer AlexNet from 8 (extract only the last
//! layer) to 1 (extract everything) and finds that accuracy saturates once the last
//! ~3 layers are extracted, while latency and energy keep growing all the way to
//! 11.2× / 6.6× — so terminating after three layers keeps virtually all the
//! accuracy at ~1.1× overhead.
//!
//! Shape to check: accuracy is non-decreasing (within noise) as more layers are
//! extracted and saturates early; latency/energy grow monotonically as extraction
//! covers more layers.

use ptolemy_accel::HardwareConfig;
use ptolemy_core::variants;

use crate::{auc_summary, fmt3, fmt_factor, BenchResult, BenchScale, Table, Workbench};

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench, attack, compiler and hardware-model errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::alexnet_imagenet(scale)?;
    let attack_sets = wb.attack_sets()?;
    let benign = wb.benign_inputs(scale.attack_samples());
    let config = HardwareConfig::default();

    let num_layers = wb.network.weight_layer_indices().len();
    let mut table = Table::new("Fig. 16 — BwCu early termination (AlexNet-class)").header([
        "termination layer",
        "layers extracted",
        "AUC",
        "latency",
        "energy",
    ]);

    let mut aucs = Vec::new();
    let mut latencies = Vec::new();
    for layers_extracted in 1..=num_layers {
        let termination_layer = num_layers - layers_extracted + 1;
        let program = variants::bw_cu_early_termination(&wb.network, 0.5, layers_extracted)?;
        let class_paths = wb.profile(&program)?;
        let per_attack: Vec<(String, f32)> = attack_sets
            .iter()
            .map(|(attack, adversarial)| {
                wb.detection_auc(&program, &class_paths, &benign, adversarial)
                    .map(|a| (attack.clone(), a))
            })
            .collect::<BenchResult<_>>()?;
        let (mean, _, _) = auc_summary(&per_attack);
        let density = wb.measured_density(&program)?;
        let report = wb.variant_cost(&program, &config, density)?;
        aucs.push(mean);
        latencies.push(report.latency_factor());
        table.row([
            termination_layer.to_string(),
            layers_extracted.to_string(),
            fmt3(mean),
            fmt_factor(report.latency_factor()),
            fmt_factor(report.energy_factor()),
        ]);
    }

    let full = *latencies.last().unwrap_or(&1.0);
    let three = latencies.get(2).copied().unwrap_or(1.0);
    table.note("paper: extracting all 8 layers costs 11.2x more latency than the last 3 for virtually the same accuracy".to_string());
    table.check(
        "latency grows as extraction covers more layers",
        latencies.windows(2).all(|w| w[1] >= w[0] - 1e-9),
    );
    table.note(format!(
        "full extraction {} vs last-3-layer point {}",
        fmt_factor(full),
        fmt_factor(three),
    ));
    table.check(
        "full extraction costs more than the last-3-layer point",
        full > three,
    );
    if let (Some(first), Some(last)) = (aucs.first(), aucs.last()) {
        table.note(format!(
            "AUC trajectory: {} -> {}",
            fmt3(*first),
            fmt3(*last)
        ));
        table.check(
            "extracting more layers does not hurt accuracy",
            *last >= *first - 0.05,
        );
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    #[test]
    fn termination_layer_mapping_matches_the_paper_axis() {
        // Terminating at layer 8 of an 8-layer network extracts exactly one layer;
        // terminating at layer 1 extracts all eight.
        let num_layers = 8usize;
        assert_eq!(num_layers - 1 + 1, 8);
        assert_eq!(num_layers - 8 + 1, 1);
    }
}
