//! Beyond the paper — overload survival: the two-tier server under a
//! deterministic seeded workload (`ptolemy_data::workload`) swept across
//! offered loads, with per-request deadlines, admission control and
//! mixed-criticality degradation.
//!
//! Two capacities are probed first: the small-batch closed-loop rate
//! (`WORKERS` in flight) and the fully-fused submit-all rate, which adaptive
//! batch forming pushes roughly an order of magnitude higher.  The workload
//! generator offers Poisson traffic at multiples of the small-batch rate for
//! the inert low end of the sweep and multiples of the fused rate for the
//! genuinely-overloaded high end (loads between the two are absorbed by
//! batch fusion and never build a backlog).  At
//! each offered load the same trace replays twice — once with admission
//! control + EDF deadlines only, once with degradation added — so the
//! goodput (completions inside their deadline) comparison is paired.  Hard
//! gates: the overload machinery is **inert at 0.5× capacity** (zero shed,
//! zero degraded verdicts), degradation **engages at 2× the fused rate** and
//! its goodput there — summed over three seed-varied paired trials, so one
//! replay's scheduling noise cannot flip the comparison — is **no worse**
//! than the undegraded run's, and every
//! degraded verdict is **bit-for-bit** the screen engine's direct `detect`
//! result (degradation sheds tier-2 work, never tier-1 correctness).  The
//! latency-percentile rows and the uncontrolled-baseline contrast are
//! advisory wall-clock shape.

use std::sync::Arc;
use std::time::Duration;

use ptolemy_attacks::Fgsm;
use ptolemy_core::{variants, DetectionEngine};
use ptolemy_data::{Arrivals, WorkloadSpec, WorkloadTrace};
use ptolemy_obs::Clock;
use ptolemy_serve::{
    AdmissionPolicy, DegradePolicy, ServeError, ServeStats, Server, ShedReason, Ticket,
};
use ptolemy_tensor::Tensor;

use crate::{fmt3, BenchResult, BenchScale, Table, Workbench};

/// Worker threads in every server under test.
const WORKERS: usize = 2;

/// Queue capacity: deep enough that the underloaded point rides out OS
/// scheduling stalls without dropping (the inertness gate), while sustained
/// overload still fills it to the degradation watermark within a few
/// milliseconds.
const QUEUE_CAPACITY: usize = 64;

/// Offered loads: multiples of the small-batch (windowed) capacity for the
/// inert low end, multiples of the fully-fused (submit-all) capacity for the
/// genuinely-overloaded high end — adaptive batch fusion raises the
/// server's capacity many-fold as the queue deepens, so only loads beyond
/// the *fused* rate actually overwhelm it.
const OFFERED: [(&str, f64, Capacity); 4] = [
    ("0.5", 0.5, Capacity::SmallBatch),
    ("1.0", 1.0, Capacity::SmallBatch),
    ("2.0 (fused)", 2.0, Capacity::Fused),
    ("4.0 (fused)", 4.0, Capacity::Fused),
];

/// Which probed capacity an offered-load point is a multiple of.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Capacity {
    /// The windowed closed-loop probe (`WORKERS` in flight, batch ≈ 1).
    SmallBatch,
    /// The submit-all probe (every request queued up front, batches fuse).
    Fused,
}

/// Degradation watermarks: enter at half the queue, recover at 1/8th.
const DEGRADE: DegradePolicy = DegradePolicy {
    high_watermark: 0.5,
    low_watermark: 0.125,
};

/// Deadline budget as a multiple of each class's nominal period — generous,
/// so the underloaded point never sheds on scheduling noise and admission
/// control passes most overload traffic through to the bounded queue, where
/// the faster drain of a degraded server buys real extra goodput (with very
/// tight deadlines admission sheds nearly everything at the door in both
/// runs and the comparison collapses to a tie).
const DEADLINE_FACTOR: f64 = 64.0;

/// Outcome of one open-loop trace replay.
struct Replay {
    stats: ServeStats,
    /// Submissions rejected at the door (admission shed + full queue).
    dropped: u64,
    /// Tickets that resolved as expired in the queue.
    expired: u64,
    /// Served verdicts flagged degraded.
    degraded: u64,
    /// Degraded verdicts whose bits diverged from the screen engine's direct
    /// `detect` result (must stay 0).
    degraded_mismatches: u64,
    /// p99 queue-to-result latency, milliseconds.
    p99_ms: f64,
}

impl Replay {
    /// Completions that made their deadline.
    fn goodput(&self) -> u64 {
        self.stats
            .completed
            .saturating_sub(self.stats.deadline_misses)
    }

    /// Everything shed by overload protection instead of served.
    fn shed(&self) -> u64 {
        self.dropped + self.expired
    }
}

/// Replays `trace` against `server` open-loop: each event is submitted at
/// its nominal arrival time with its deadline budget; a full queue or an
/// admission rejection drops the request instead of blocking (open-loop
/// traffic does not wait politely).
fn replay(
    server: Server,
    screen: &DetectionEngine,
    trace: &WorkloadTrace,
    pool: &[Tensor],
) -> BenchResult<Replay> {
    let clock = Clock::monotonic();
    let start_ns = clock.now_ns();
    let mut tickets: Vec<(usize, Ticket)> = Vec::with_capacity(trace.len());
    let mut dropped = 0u64;
    for (index, event) in trace.events().iter().enumerate() {
        let target_ns = start_ns + event.arrival_ns;
        let now_ns = clock.now_ns();
        if now_ns < target_ns {
            std::thread::sleep(Duration::from_nanos(target_ns - now_ns));
        }
        let input = pool[index % pool.len()].clone();
        match server.try_submit_with_deadline(input, Duration::from_nanos(event.deadline_ns)) {
            Ok(ticket) => tickets.push((index, ticket)),
            Err(ServeError::Shed(ShedReason::Admission)) | Err(ServeError::QueueFull) => {
                dropped += 1;
            }
            Err(e) => return Err(e.into()),
        }
    }
    let mut expired = 0u64;
    let mut degraded = 0u64;
    let mut degraded_mismatches = 0u64;
    for (index, ticket) in tickets {
        match ticket.wait() {
            Ok(served) => {
                if served.degraded {
                    degraded += 1;
                    let expected = screen.detect(&pool[index % pool.len()])?;
                    let same = served.detection.score.to_bits() == expected.score.to_bits()
                        && served.detection.is_adversary == expected.is_adversary
                        && served.detection.predicted_class == expected.predicted_class;
                    if !same {
                        degraded_mismatches += 1;
                    }
                }
            }
            Err(ServeError::Shed(ShedReason::DeadlineExpired)) => expired += 1,
            Err(e) => return Err(e.into()),
        }
    }
    let stats = server.shutdown();
    let p99_ms = stats.p99_latency_ms;
    Ok(Replay {
        stats,
        dropped,
        expired,
        degraded,
        degraded_mismatches,
        p99_ms,
    })
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench, engine, workload and server errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::lenet_small(scale)?;
    let phi = wb.calibrate_phi(true)?;
    let screen_program = variants::fw_ab(&wb.network, phi)?;
    let expensive_program = variants::bw_cu(&wb.network, 0.5)?;
    let screen_paths = wb.profile(&screen_program)?;
    let expensive_paths = wb.profile(&expensive_program)?;

    let limit = wb.scale.attack_samples();
    let benign = wb.benign_inputs(limit);
    let adversarial = wb.adversarial_inputs(&Fgsm::new(0.25), limit)?;

    let screen = Arc::new(
        DetectionEngine::builder(wb.network.clone(), screen_program, screen_paths)
            .calibrate(&benign, &adversarial)
            .build()?,
    );
    let expensive = Arc::new(
        DetectionEngine::builder(wb.network.clone(), expensive_program, expensive_paths)
            .calibrate(&benign, &adversarial)
            .build()?,
    );

    let mut pool = Vec::new();
    for (b, a) in benign.iter().zip(&adversarial) {
        pool.push(b.clone());
        pool.push(a.clone());
    }

    // Uncertainty band spanning the middle half of the pool's screening
    // scores: escalation pressure is guaranteed, so degradation has real
    // tier-2 work to shed.
    let mut scores: Vec<f32> = pool
        .iter()
        .map(|x| screen.detect(x).map(|d| d.score))
        .collect::<Result<_, _>>()?;
    scores.sort_by(f32::total_cmp);
    let band = (scores[scores.len() / 4], scores[scores.len() * 3 / 4]);

    let build = |admission: bool, degrade: bool| -> BenchResult<Server> {
        let mut builder = Server::builder(screen.clone())
            .escalate(expensive.clone(), band.0, band.1)
            .workers(WORKERS)
            .queue_capacity(QUEUE_CAPACITY);
        if admission {
            builder = builder.admission(AdmissionPolicy::default());
        }
        if degrade {
            builder = builder.degradation(DEGRADE);
        }
        Ok(builder.start()?)
    };

    // Closed-loop capacity probe with `WORKERS` requests in flight — the
    // same small-batch regime the open-loop replay runs in (a submit-all
    // probe would measure the fully-fused batch throughput and overstate the
    // open-loop capacity several-fold).  The measured per-request service
    // time calibrates the workload generator.
    let clock = Clock::monotonic();
    let probe = Server::builder(screen.clone())
        .escalate(expensive.clone(), band.0, band.1)
        .workers(WORKERS)
        .queue_capacity(pool.len().max(1))
        .start()?;
    let probe_start_ns = clock.now_ns();
    let mut window: std::collections::VecDeque<Ticket> = std::collections::VecDeque::new();
    for x in &pool {
        if window.len() >= WORKERS {
            if let Some(ticket) = window.pop_front() {
                ticket.wait()?;
            }
        }
        window.push_back(probe.submit(x.clone())?);
    }
    for ticket in window {
        ticket.wait()?;
    }
    let probe_ns = clock.now_ns().saturating_sub(probe_start_ns).max(1);
    probe.shutdown();
    let per_request_ns =
        (probe_ns.saturating_mul(WORKERS as u64) / pool.len().max(1) as u64).max(1);
    let capacity_rps = pool.len() as f64 / (probe_ns as f64 / 1e9);

    // Fused capacity probe: everything queued up front, so the adaptive batch
    // former fuses maximal batches.  This is the server's true saturation
    // throughput — typically an order of magnitude above the small-batch rate
    // — and the rate an offered load must exceed to genuinely overwhelm it.
    let probe = Server::builder(screen.clone())
        .escalate(expensive.clone(), band.0, band.1)
        .workers(WORKERS)
        .queue_capacity(pool.len().max(1))
        .start()?;
    let fused_start_ns = clock.now_ns();
    let fused_tickets: Vec<Ticket> = pool
        .iter()
        .map(|x| probe.submit(x.clone()))
        .collect::<Result<_, _>>()?;
    for ticket in fused_tickets {
        ticket.wait()?;
    }
    let fused_ns = clock.now_ns().saturating_sub(fused_start_ns).max(1);
    probe.shutdown();
    let fused_capacity_rps = pool.len() as f64 / (fused_ns as f64 / 1e9);

    // Translate "mult × capacity" into the generator's utilization knob:
    // rate = utilization / mean_service, so utilization = rate × service.
    let utilization_of = |mult: f64, relative_to: Capacity| -> f64 {
        match relative_to {
            Capacity::SmallBatch => mult * WORKERS as f64,
            Capacity::Fused => mult * fused_capacity_rps * per_request_ns as f64 / 1e9,
        }
    };

    let requests = limit * 6;
    let mut table = Table::new(
        "Overload survival — goodput vs offered load, admission + EDF deadlines \
         with and without mixed-criticality degradation",
    )
    .header([
        "offered (x capacity)",
        "goodput (no degrade)",
        "goodput (degrade)",
        "shed (degrade)",
        "degraded served",
        "p99 ms (no degrade)",
        "p99 ms (degrade)",
    ]);

    let mut results: Vec<(&str, Replay, Replay)> = Vec::new();
    for (point, &(label, mult, relative_to)) in OFFERED.iter().enumerate() {
        let spec = WorkloadSpec {
            seed: 0x0BE5 + point as u64,
            requests,
            classes: 3,
            total_utilization: utilization_of(mult, relative_to),
            mean_service_ns: per_request_ns,
            weibull_shape: 1.5,
            deadline_factor: DEADLINE_FACTOR,
            arrivals: Arrivals::Poisson,
        };
        let trace = spec.generate()?;
        let undegraded = replay(build(true, false)?, &screen, &trace, &pool)?;
        let degraded = replay(build(true, true)?, &screen, &trace, &pool)?;
        table.row([
            label.to_string(),
            undegraded.goodput().to_string(),
            degraded.goodput().to_string(),
            degraded.shed().to_string(),
            degraded.degraded.to_string(),
            fmt3(undegraded.p99_ms as f32),
            fmt3(degraded.p99_ms as f32),
        ]);
        results.push((label, undegraded, degraded));
    }

    // The goodput gate sits on the 2.0x-fused point, where the gap between
    // screen-only and two-tier service capacity is structural (at 4.0x the
    // per-class deadlines — which scale with the offered rate — get so tight
    // that both runs collapse toward zero and the comparison degenerates to
    // a tie).  One open-loop replay's goodput delta is within scheduling
    // noise of zero, so the gate sums three seed-varied paired trials: the
    // displayed row plus two more.
    const GATED: usize = 2;
    let (_, gated_mult, gated_relative_to) = OFFERED[GATED];
    let mut extra_trials: Vec<(Replay, Replay)> = Vec::new();
    for trial in 0..2u64 {
        let spec = WorkloadSpec {
            seed: 0x1BE5 + trial,
            requests,
            classes: 3,
            total_utilization: utilization_of(gated_mult, gated_relative_to),
            mean_service_ns: per_request_ns,
            weibull_shape: 1.5,
            deadline_factor: DEADLINE_FACTOR,
            arrivals: Arrivals::Poisson,
        };
        let trace = spec.generate()?;
        let undegraded = replay(build(true, false)?, &screen, &trace, &pool)?;
        let degraded = replay(build(true, true)?, &screen, &trace, &pool)?;
        extra_trials.push((undegraded, degraded));
    }
    let gate_trials: Vec<(&Replay, &Replay)> =
        std::iter::once((&results[GATED].1, &results[GATED].2))
            .chain(extra_trials.iter().map(|(a, b)| (a, b)))
            .collect();
    let gate_plain_goodput: u64 = gate_trials.iter().map(|(a, _)| a.goodput()).sum();
    let gate_degraded_goodput: u64 = gate_trials.iter().map(|(_, b)| b.goodput()).sum();
    let gate_degraded_served: u64 = gate_trials.iter().map(|(_, b)| b.degraded).sum();
    let gate_degrade_entered: u64 = gate_trials
        .iter()
        .map(|(_, b)| b.stats.degrade_entered)
        .sum();
    let gate_shed: u64 = gate_trials.iter().map(|(_, b)| b.shed()).sum();

    // Uncontrolled contrast: no deadlines, no admission, no degradation —
    // the gated overload trace just piles onto the bounded queue with
    // blocking submissions, and latency eats the whole backlog.
    let overload_spec = WorkloadSpec {
        seed: 0x0BE5 + GATED as u64,
        requests,
        classes: 3,
        total_utilization: utilization_of(gated_mult, gated_relative_to),
        mean_service_ns: per_request_ns,
        weibull_shape: 1.5,
        deadline_factor: DEADLINE_FACTOR,
        arrivals: Arrivals::Poisson,
    };
    let overload_trace = overload_spec.generate()?;
    let uncontrolled = Server::builder(screen.clone())
        .escalate(expensive.clone(), band.0, band.1)
        .workers(WORKERS)
        .queue_capacity(QUEUE_CAPACITY)
        .start()?;
    let uc_start_ns = clock.now_ns();
    let mut uc_tickets = Vec::with_capacity(overload_trace.len());
    for (index, event) in overload_trace.events().iter().enumerate() {
        let target_ns = uc_start_ns + event.arrival_ns;
        let now_ns = clock.now_ns();
        if now_ns < target_ns {
            std::thread::sleep(Duration::from_nanos(target_ns - now_ns));
        }
        uc_tickets.push(uncontrolled.submit(pool[index % pool.len()].clone())?);
    }
    for ticket in uc_tickets {
        ticket.wait()?;
    }
    let uncontrolled_stats = uncontrolled.shutdown();
    table.row([
        "2.0 (uncontrolled)".to_string(),
        "-".to_string(),
        "-".to_string(),
        "0".to_string(),
        "0".to_string(),
        fmt3(uncontrolled_stats.p99_latency_ms as f32),
        "-".to_string(),
    ]);

    let (_, under_plain, under_guarded) = &results[0];
    let gated_degraded_p99_ms = results[GATED].2.p99_ms;

    table.metric("capacity_rps_milli", (capacity_rps * 1000.0) as u64);
    table.metric(
        "fused_capacity_rps_milli",
        (fused_capacity_rps * 1000.0) as u64,
    );
    table.metric("offered_requests", requests as u64);
    table.metric("underload_shed", under_guarded.shed());
    table.metric("underload_degraded_served", under_guarded.degraded);
    table.metric("overload_goodput_without_degradation", gate_plain_goodput);
    table.metric("overload_goodput_with_degradation", gate_degraded_goodput);
    table.metric("overload_degraded_served", gate_degraded_served);
    table.metric("overload_shed_with_degradation", gate_shed);
    table.metric(
        "uncontrolled_p99_micros",
        (uncontrolled_stats.p99_latency_ms * 1000.0) as u64,
    );
    table.metric(
        "degraded_p99_micros",
        (gated_degraded_p99_ms * 1000.0) as u64,
    );

    table.note(format!(
        "probed capacity {:.0} req/s small-batch ({} ns/request, {WORKERS} workers), \
         {:.0} req/s fused; {} requests per offered-load point, Poisson arrivals, UUniFast \
         over 3 classes, Weibull(1.5) sizes, deadlines {DEADLINE_FACTOR}x each class period; \
         band [{:.3}, {:.3}]; queue {QUEUE_CAPACITY}, degrade watermarks {}/{}; \
         goodput gate sums 3 paired trials at 2.0x fused",
        capacity_rps,
        per_request_ns,
        fused_capacity_rps,
        requests,
        band.0,
        band.1,
        DEGRADE.high_watermark,
        DEGRADE.low_watermark,
    ));

    table.check(
        "overload protection is inert at 0.5x capacity: zero shed, zero degraded verdicts",
        under_guarded.shed() == 0
            && under_guarded.degraded == 0
            && under_plain.shed() == 0
            && under_guarded.stats.degrade_entered == 0,
    );
    table.check(
        "degradation engages under 2x overload",
        gate_degraded_served >= 1 && gate_degrade_entered >= 1,
    );
    table.check(
        "goodput with degradation >= goodput without, at 2x overload summed over 3 paired trials",
        gate_degraded_goodput >= gate_plain_goodput,
    );
    table.check(
        "every degraded verdict is bit-for-bit the screen engine's direct detect",
        results
            .iter()
            .map(|(_, a, b)| (a, b))
            .chain(extra_trials.iter().map(|(a, b)| (a, b)))
            .all(|(a, b)| a.degraded_mismatches == 0 && b.degraded_mismatches == 0),
    );
    table.check(
        "every admitted request resolves: completions + expiries account for every ticket",
        results
            .iter()
            .map(|(_, a, b)| (a, b))
            .chain(extra_trials.iter().map(|(a, b)| (a, b)))
            .all(|(a, b)| {
                a.stats.completed + a.expired + a.dropped == requests as u64
                    && b.stats.completed + b.expired + b.dropped == requests as u64
            }),
    );
    table.timing_check(
        "degradation strictly improves goodput at 2x overload summed over 3 paired trials",
        gate_degraded_goodput > gate_plain_goodput,
    );
    table.timing_check(
        "uncontrolled overload p99 is no better than the degraded server's p99",
        uncontrolled_stats.p99_latency_ms >= gated_degraded_p99_ms,
    );
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_survival_holds_its_gates() {
        let tables = run(BenchScale::Quick).unwrap();
        assert_eq!(tables.len(), 1);
        let rendered = tables[0].to_string();
        for gate in [
            "zero degraded verdicts: holds",
            "engages under 2x overload: holds",
            "summed over 3 paired trials: holds",
            "direct detect: holds",
            "every ticket: holds",
        ] {
            assert!(rendered.contains(gate), "gate `{gate}` failed:\n{rendered}");
        }
        assert_eq!(tables[0].checks().len(), 5);
        assert_eq!(tables[0].advisory_checks().len(), 2);
        if rendered.contains("below expectation") {
            eprintln!("warning: timing shape check missed in this environment:\n{rendered}");
        }
    }
}
