//! Fig. 11a/11b — latency and energy overhead of the Ptolemy variants vs EP.
//!
//! The paper's headline efficiency result: on AlexNet, BwCu costs 12.3× latency /
//! 7.7× energy (similar to EP), BwAb drops that to 1.2× / 1.1×, FwAb hides the
//! remaining latency behind inference (2.1 % overhead) and Hybrid sits in between
//! (1.7× / 1.4×).  On the deeper ResNet-18 every overhead is larger (BwCu 195×/106×,
//! BwAb 3.2×/2.0×, FwAb 2.1× latency, Hybrid 47×/36×) because deeper networks have
//! more important neurons to extract.
//!
//! Shape to check: BwCu ≈ EP ≫ Hybrid > BwAb ≥ FwAb, FwAb's latency overhead is the
//! smallest, and every overhead grows from the AlexNet-class to the ResNet-class
//! network.

use ptolemy_accel::HardwareConfig;
use ptolemy_baselines::EpDefense;

use crate::{fmt_factor, BenchResult, BenchScale, Table, Workbench};

/// Paper latency factors on AlexNet for (BwCu, BwAb, FwAb, Hybrid).
pub const PAPER_ALEXNET_LATENCY: [f64; 4] = [12.3, 1.2, 1.021, 1.7];
/// Paper energy factors on AlexNet for (BwCu, BwAb, FwAb, Hybrid).
pub const PAPER_ALEXNET_ENERGY: [f64; 4] = [7.7, 1.1, 1.16, 1.4];
/// Paper latency factors on ResNet-18 for (BwCu, BwAb, FwAb, Hybrid).
pub const PAPER_RESNET_LATENCY: [f64; 4] = [195.4, 3.2, 2.1, 47.3];
/// Paper energy factors on ResNet-18 for (BwCu, BwAb, FwAb, Hybrid).
pub const PAPER_RESNET_ENERGY: [f64; 4] = [105.9, 2.0, 2.0, 36.1];

/// `(variant name, latency factor, energy factor)` rows behind one table.
type VariantCostRows = Vec<(String, f64, f64)>;

fn run_one(
    wb: &Workbench,
    title: &str,
    paper_latency: &[f64; 4],
    paper_energy: &[f64; 4],
) -> BenchResult<(Table, VariantCostRows)> {
    let config = HardwareConfig::default();
    let mut table = Table::new(title).header([
        "variant",
        "latency",
        "energy",
        "paper latency",
        "paper energy",
    ]);

    let mut measured = Vec::new();
    for (i, (name, program)) in wb.ptolemy_variants(0.5)?.into_iter().enumerate() {
        let density = wb.measured_density(&program)?;
        let report = wb.variant_cost(&program, &config, density)?;
        table.row([
            name.clone(),
            fmt_factor(report.latency_factor()),
            fmt_factor(report.energy_factor()),
            fmt_factor(paper_latency[i]),
            fmt_factor(paper_energy[i]),
        ]);
        measured.push((name, report.latency_factor(), report.energy_factor()));
    }

    // EP runs BwCu-style extraction on every layer with no compiler support.
    let ep = EpDefense::fit(&wb.network, wb.dataset.train(), 0.5)?;
    let bwcu_like = wb.ptolemy_variants(0.5)?.remove(0).1;
    let density = wb.measured_density(&bwcu_like)?;
    let ep_report = ep.cost(&wb.network, &config, density)?;
    table.row([
        "EP".to_string(),
        fmt_factor(ep_report.latency_factor()),
        fmt_factor(ep_report.energy_factor()),
        "~12.3x".to_string(),
        "~7.7x".to_string(),
    ]);
    measured.push((
        "EP".to_string(),
        ep_report.latency_factor(),
        ep_report.energy_factor(),
    ));

    let get = |name: &str| measured.iter().find(|(n, _, _)| n == name).cloned();
    if let (Some(bwcu), Some(bwab), Some(fwab), Some(hybrid), Some(ep)) = (
        get("BwCu"),
        get("BwAb"),
        get("FwAb"),
        get("Hybrid"),
        get("EP"),
    ) {
        table.check(
            "BwCu >> BwAb >= FwAb in latency",
            bwcu.1 > bwab.1 && bwab.1 >= fwab.1 - 1e-9,
        );
        table.check(
            "FwAb has the lowest latency overhead",
            fwab.1 <= bwab.1 && fwab.1 <= hybrid.1 && fwab.1 <= bwcu.1,
        );
        table.check(
            "Hybrid sits between BwAb and BwCu",
            hybrid.1 >= bwab.1 - 1e-9 && hybrid.1 <= bwcu.1 + 1e-9,
        );
        table.check("EP costs at least as much as BwCu", ep.1 >= bwcu.1 - 1e-9);
        table.metric("bwcu_latency_factor_milli", (bwcu.1 * 1000.0) as u64);
        table.metric("fwab_latency_factor_milli", (fwab.1 * 1000.0) as u64);
    }
    Ok((table, measured))
}

/// Runs the experiment (both sub-figures).
///
/// # Errors
///
/// Propagates workbench, compiler and hardware-model errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let imagenet = Workbench::alexnet_imagenet(scale)?;
    let cifar = Workbench::resnet_cifar100(scale)?;
    let (mut table_a, alexnet) = run_one(
        &imagenet,
        "Fig. 11a — latency/energy overhead, AlexNet-class",
        &PAPER_ALEXNET_LATENCY,
        &PAPER_ALEXNET_ENERGY,
    )?;
    let (mut table_b, resnet) = run_one(
        &cifar,
        "Fig. 11b — latency/energy overhead, ResNet18-class",
        &PAPER_RESNET_LATENCY,
        &PAPER_RESNET_ENERGY,
    )?;

    // Cross-network shape: the deeper network pays more for BwCu extraction.
    let bwcu_alexnet = alexnet.iter().find(|(n, _, _)| n == "BwCu");
    let bwcu_resnet = resnet.iter().find(|(n, _, _)| n == "BwCu");
    if let (Some(a), Some(r)) = (bwcu_alexnet, bwcu_resnet) {
        table_b.note(format!(
            "BwCu overhead by depth: ResNet {} vs AlexNet {}",
            fmt_factor(r.1),
            fmt_factor(a.1),
        ));
        table_b.check("BwCu overhead grows with depth", r.1 > a.1);
    }
    table_a.note(
        "paper: EP is comparable to BwCu; CDRP is excluded because it cannot run online"
            .to_string(),
    );
    Ok(vec![table_a, table_b])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_preserve_the_published_ordering() {
        // BwCu >> Hybrid > BwAb >= FwAb in latency on both networks.
        for paper in [PAPER_ALEXNET_LATENCY, PAPER_RESNET_LATENCY] {
            assert!(paper[0] > paper[3] && paper[3] > paper[1] && paper[1] >= paper[2]);
        }
        // Overheads are larger on the deeper network.
        for i in 0..4 {
            assert!(PAPER_RESNET_LATENCY[i] >= PAPER_ALEXNET_LATENCY[i]);
            assert!(PAPER_RESNET_ENERGY[i] >= PAPER_ALEXNET_ENERGY[i]);
        }
    }
}
