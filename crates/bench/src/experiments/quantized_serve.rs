//! Beyond the paper — int8 quantized serving: the two-tier server with its
//! screening tier in f32 vs the same server screening on the int8
//! [`ptolemy_nn::QuantizedNetwork`] (`ServerBuilder::quantized_screen`), with
//! the escalation tier staying f32 in both modes.
//!
//! This is the serving-level enforcement of the int8 statistical contract
//! that `quantized_detect` pins at the engine level: both modes route through
//! the **same escalation band**, so requests the cheap tier is unsure about
//! re-score on the exact f32 tier either way, and the only divergence left is
//! screen-tier verdicts near the decision boundary.  Verdict agreement
//! between the two modes is a **hard gate** (the pipeline is seeded and the
//! int8 pass accumulates in exact i32, so the number is machine-independent);
//! the int8-vs-f32 serving throughput comparison is advisory wall-clock
//! shape.

use std::sync::Arc;
use std::time::Duration;

use ptolemy_attacks::Fgsm;
use ptolemy_core::{variants, Detection, DetectionEngine};
use ptolemy_obs::Clock;
use ptolemy_serve::{ServeStats, Server, Ticket};

use crate::{fmt3, BenchResult, BenchScale, Table, Workbench};

/// Escalation band shared by both modes: screening scores in this range
/// re-score on the BwCu tier, so the escalation rate is matched by
/// construction (up to screen-score movement at the band edges).
const BAND: (f32, f32) = (0.3, 0.7);

/// Minimum fraction of inputs on which the int8-screened server's verdict
/// must agree with the f32-screened server's verdict.
const MIN_VERDICT_AGREEMENT: f64 = 0.75;

fn throughput(count: usize, elapsed: Duration) -> f64 {
    count as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// Serves `workload` through `server`, returning the verdicts in submission
/// order, the served throughput, and the shutdown stats snapshot.
fn serve_all(
    server: Server,
    workload: &[ptolemy_tensor::Tensor],
) -> BenchResult<(Vec<Detection>, f64, ServeStats)> {
    let clock = Clock::monotonic();
    let start_ns = clock.now_ns();
    let tickets: Vec<Ticket> = workload
        .iter()
        .map(|input| server.submit(input.clone()))
        .collect::<Result<_, _>>()?;
    let mut verdicts = Vec::with_capacity(tickets.len());
    for ticket in tickets {
        verdicts.push(ticket.wait()?.detection);
    }
    let served = throughput(
        workload.len(),
        Duration::from_nanos(clock.now_ns().saturating_sub(start_ns)),
    );
    Ok((verdicts, served, server.shutdown()))
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench, engine and server errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::lenet_small(scale)?;
    let phi = wb.calibrate_phi(true)?;
    let screen_program = variants::fw_ab(&wb.network, phi)?;
    let expensive_program = variants::bw_cu(&wb.network, 0.5)?;
    let screen_paths = wb.profile(&screen_program)?;
    let expensive_paths = wb.profile(&expensive_program)?;

    let limit = wb.scale.attack_samples();
    let benign = wb.benign_inputs(limit);
    let adversarial = wb.adversarial_inputs(&Fgsm::new(0.25), limit)?;

    let screen = Arc::new(
        DetectionEngine::builder(wb.network.clone(), screen_program, screen_paths)
            .calibrate(&benign, &adversarial)
            .quantized(&benign)
            .build()?,
    );
    let expensive = Arc::new(
        DetectionEngine::builder(wb.network.clone(), expensive_program, expensive_paths)
            .calibrate(&benign, &adversarial)
            .build()?,
    );
    let qnet = screen
        .quantized_network()
        .ok_or("screen engine built without a quantized network")?
        .clone();

    // Mixed stream, interleaved; no cache in either server, so every request
    // is freshly screened and the mode comparison is clean.
    let mut workload = Vec::new();
    for (b, a) in benign.iter().zip(&adversarial) {
        workload.push(b.clone());
        workload.push(a.clone());
    }

    let f32_server = Server::builder(screen.clone())
        .escalate(expensive.clone(), BAND.0, BAND.1)
        .workers(4)
        .queue_capacity(workload.len().max(1))
        .start()?;
    let (f32_verdicts, f32_rate, f32_stats) = serve_all(f32_server, &workload)?;

    let int8_server = Server::builder(screen.clone())
        .quantized_screen(qnet)
        .escalate(expensive.clone(), BAND.0, BAND.1)
        .workers(4)
        .queue_capacity(workload.len().max(1))
        .start()?;
    let (int8_verdicts, int8_rate, int8_stats) = serve_all(int8_server, &workload)?;

    let total = workload.len();
    let verdict_agree = f32_verdicts
        .iter()
        .zip(&int8_verdicts)
        .filter(|(a, b)| a.is_adversary == b.is_adversary)
        .count();
    let class_agree = f32_verdicts
        .iter()
        .zip(&int8_verdicts)
        .filter(|(a, b)| a.predicted_class == b.predicted_class)
        .count();
    let verdict_rate = verdict_agree as f64 / total as f64;
    let class_rate = class_agree as f64 / total as f64;

    let mut table = Table::new(
        "Quantized serving — f32 screen vs int8 screen (quantized_screen), \
         both escalating to the same f32 BwCu tier",
    )
    .header(["measure", "f32 screen", "int8 screen", "delta"]);
    table.row([
        "throughput (inputs/s)".to_string(),
        fmt3(f32_rate as f32),
        fmt3(int8_rate as f32),
        format!("{:.3}x", int8_rate / f32_rate.max(1e-9)),
    ]);
    table.row([
        "escalated".to_string(),
        f32_stats.escalated.to_string(),
        int8_stats.escalated.to_string(),
        format!(
            "{:+}",
            int8_stats.escalated as i64 - f32_stats.escalated as i64
        ),
    ]);
    table.row([
        "int8 screens".to_string(),
        f32_stats.int8_screens.to_string(),
        int8_stats.int8_screens.to_string(),
        "-".to_string(),
    ]);
    table.row([
        "verdict agreement".to_string(),
        "1.000".to_string(),
        fmt3(verdict_rate as f32),
        fmt3((1.0 - verdict_rate) as f32),
    ]);
    table.row([
        "class agreement".to_string(),
        "1.000".to_string(),
        fmt3(class_rate as f32),
        fmt3((1.0 - class_rate) as f32),
    ]);

    table.metric("verdict_agreement_permille", (verdict_rate * 1000.0) as u64);
    table.metric("class_agreement_permille", (class_rate * 1000.0) as u64);
    table.metric("f32_escalated", f32_stats.escalated);
    table.metric("int8_escalated", int8_stats.escalated);
    table.metric("int8_screens", int8_stats.int8_screens);
    table.metric("f32_throughput_milli", (f32_rate * 1000.0) as u64);
    table.metric("int8_throughput_milli", (int8_rate * 1000.0) as u64);

    table.note(format!(
        "workload: {total} inputs ({} benign, {} adversarial); escalation band \
         [{}, {}] in both modes; no result cache",
        benign.len(),
        adversarial.len(),
        BAND.0,
        BAND.1,
    ));
    table.check(
        "every request through the quantized server screened on int8 (and none \
         on the f32 server)",
        int8_stats.int8_screens == total as u64 && f32_stats.int8_screens == 0,
    );
    table.check(
        "served int8-screen verdicts agree with the f32-screen server on >= 75% \
         of inputs",
        verdict_rate >= MIN_VERDICT_AGREEMENT,
    );
    table.check(
        "both modes completed every request without failures",
        f32_stats.failed == 0
            && int8_stats.failed == 0
            && f32_stats.completed == total as u64
            && int8_stats.completed == total as u64,
    );
    table.timing_check(
        "int8-screen serving throughput is at least 0.5x the f32-screen server",
        int8_rate >= 0.5 * f32_rate,
    );
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantized_serving_holds_its_agreement_contract() {
        let tables = run(BenchScale::Quick).unwrap();
        assert_eq!(tables.len(), 1);
        let rendered = tables[0].to_string();
        for gate in [
            "on the f32 server): holds",
            ">= 75% of inputs: holds",
            "without failures: holds",
        ] {
            assert!(rendered.contains(gate), "gate `{gate}` failed:\n{rendered}");
        }
        assert_eq!(tables[0].checks().len(), 3);
        assert_eq!(tables[0].advisory_checks().len(), 1);
        // The throughput comparison is wall-clock and advisory under the
        // unoptimized test profile.
        if rendered.contains("below expectation") {
            eprintln!("warning: timing shape check missed in this environment:\n{rendered}");
        }
    }
}
