//! Beyond the paper — raw-speed floor: the naive scalar triple loop vs the
//! blocked, register-tiled GEMM microkernel vs its row-parallel driver.
//!
//! Every tensor op in the workspace bottoms out in `Tensor::matmul`
//! (`im2col` convolutions, dense layers, batched traces), so the kernel's
//! raw throughput is the floor under every latency number in this harness.
//! The blocked kernel packs A/B panels and keeps a `MR x NR` register tile
//! hot, but preserves the naive loop's per-element K-accumulation order
//! exactly — so it must be **bit-for-bit** identical to the naive loop (a
//! hard parity gate here), and faster purely through memory locality.
//!
//! Shape to check: blocked beats naive by >= 2x at the large shape and the
//! row-parallel driver is no slower than blocked (both advisory: wall-clock
//! on a loaded or single-core runner is not a portable gate — the parity
//! flags are).

use ptolemy_obs::Clock;
use ptolemy_tensor::quant::matmul_i8;
use ptolemy_tensor::{
    matmul_blocked, matmul_i8_blocked, matmul_i8_parallel, matmul_parallel, Rng64, Tensor,
};

use crate::{fmt3, BenchResult, BenchScale, Table};

/// `(m, k, n)` shapes: tile-sized, cache-panel-sized, and a large GEMM that
/// straddles every blocking boundary (the acceptance bar reads the last row).
const SHAPES: [(usize, usize, usize); 3] = [(32, 32, 32), (96, 128, 64), (256, 256, 256)];

fn repetitions(scale: BenchScale, flops: usize) -> usize {
    let budget = match scale {
        BenchScale::Quick => 400_000_000,
        BenchScale::Full => 4_000_000_000,
    };
    (budget / flops.max(1)).clamp(3, 2_000)
}

/// Random `[rows, cols]` matrix with zeros sprinkled in so the kernel's
/// sparsity-skip branch runs at its production rate.
fn random_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng64::new(seed);
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            if i % 17 == 0 {
                0.0
            } else {
                rng.uniform(-1.0, 1.0)
            }
        })
        .collect();
    Tensor::from_vec(data, &[rows, cols]).expect("shape matches data")
}

fn bits_equal(x: &Tensor, y: &Tensor) -> bool {
    x.as_slice()
        .iter()
        .zip(y.as_slice())
        .all(|(a, b)| a.to_bits() == b.to_bits())
}

/// Random i8 operand with the same sparsity sprinkle as [`random_matrix`], so
/// the integer kernels' zero-skip branch runs at its production rate.
fn random_i8(len: usize, seed: u64) -> Vec<i8> {
    let mut rng = Rng64::new(seed);
    (0..len)
        .map(|i| {
            if i % 17 == 0 {
                0
            } else {
                rng.uniform(-127.0, 127.0) as i32 as i8
            }
        })
        .collect()
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates tensor shape errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let mut table = Table::new(
        "GEMM microkernel — naive scalar triple loop vs blocked register-tiled \
         kernel vs row-parallel driver",
    )
    .header([
        "shape (m.k.n)",
        "naive (ms)",
        "blocked (ms)",
        "parallel (ms)",
        "blocked speedup",
        "bit parity",
    ]);

    let clock = Clock::monotonic();
    let mut parity_everywhere = true;
    let mut blocked_2x_at_large = false;
    let mut parallel_keeps_up = true;
    // Fold every product into a checksum so the optimiser cannot elide the
    // timed work.
    let mut checksum = 0.0f64;

    for (idx, &(m, k, n)) in SHAPES.iter().enumerate() {
        let a = random_matrix(m, k, 0x9E_u64.wrapping_add(idx as u64));
        let b = random_matrix(k, n, 0x3C_u64.wrapping_add(idx as u64));
        let reps = repetitions(scale, 2 * m * k * n);

        // Warm all three paths (fault in pack buffers, prime the core cache).
        checksum += f64::from(a.matmul_naive(&b)?.sum());
        checksum += f64::from(matmul_blocked(&a, &b)?.sum());
        checksum += f64::from(matmul_parallel(&a, &b)?.sum());

        let start_ns = clock.now_ns();
        for _ in 0..reps {
            checksum += f64::from(a.matmul_naive(&b)?.sum());
        }
        let naive_ms = clock.now_ns().saturating_sub(start_ns) as f64 / 1e6 / reps as f64;

        let start_ns = clock.now_ns();
        for _ in 0..reps {
            checksum += f64::from(matmul_blocked(&a, &b)?.sum());
        }
        let blocked_ms = clock.now_ns().saturating_sub(start_ns) as f64 / 1e6 / reps as f64;

        let start_ns = clock.now_ns();
        for _ in 0..reps {
            checksum += f64::from(matmul_parallel(&a, &b)?.sum());
        }
        let parallel_ms = clock.now_ns().saturating_sub(start_ns) as f64 / 1e6 / reps as f64;

        // The hard gate: all three kernels produce the same bits.
        let naive = a.matmul_naive(&b)?;
        let parity = bits_equal(&matmul_blocked(&a, &b)?, &naive)
            && bits_equal(&matmul_parallel(&a, &b)?, &naive)
            && bits_equal(&a.matmul(&b)?, &naive);
        parity_everywhere &= parity;

        let speedup = naive_ms / blocked_ms.max(1e-9);
        if idx == SHAPES.len() - 1 {
            blocked_2x_at_large = speedup >= 2.0;
        }
        // 1.15x headroom: on one core the parallel driver degenerates to the
        // blocked path plus a cores lookup, so "keeps up" means within noise.
        parallel_keeps_up &= parallel_ms <= blocked_ms * 1.15 + 0.05;

        let tag = format!("{m}x{k}x{n}");
        table.metric(format!("naive_{tag}_us"), (naive_ms * 1000.0) as u64);
        table.metric(format!("blocked_{tag}_us"), (blocked_ms * 1000.0) as u64);
        table.metric(format!("parallel_{tag}_us"), (parallel_ms * 1000.0) as u64);
        table.row([
            tag,
            fmt3(naive_ms as f32),
            fmt3(blocked_ms as f32),
            fmt3(parallel_ms as f32),
            format!("{speedup:.2}x"),
            if parity { "bit-for-bit" } else { "DIVERGED" }.to_string(),
        ]);
    }

    table.note(format!(
        "per-shape repetitions sized to a fixed flop budget; checksum {checksum:.3}"
    ));
    table.check(
        "blocked and row-parallel kernels are bit-for-bit identical to the \
         naive triple loop at every shape",
        parity_everywhere,
    );
    table.timing_check(
        "blocked kernel is >= 2x the naive loop at the large shape",
        blocked_2x_at_large,
    );
    table.timing_check(
        "row-parallel driver is no slower than the blocked kernel",
        parallel_keeps_up,
    );

    // The int8 twin: the blocked i8 kernel carries the serving stack's
    // quantized screening tier, and — integer accumulation being exact — its
    // parity with the naive `matmul_i8` is equality, not tolerance.
    let mut i8_table = Table::new(
        "i8 GEMM microkernel — naive i8 triple loop vs blocked register-tiled \
         kernel vs row-parallel driver (i32 accumulation)",
    )
    .header([
        "shape (m.k.n)",
        "naive (ms)",
        "blocked (ms)",
        "parallel (ms)",
        "blocked speedup",
        "bit parity",
    ]);
    let mut i8_parity_everywhere = true;
    let mut i8_blocked_competitive_at_large = false;
    let mut i8_checksum = 0i64;
    for (idx, &(m, k, n)) in SHAPES.iter().enumerate() {
        let a = random_i8(m * k, 0x51_u64.wrapping_add(idx as u64));
        let b = random_i8(k * n, 0xA7_u64.wrapping_add(idx as u64));
        let reps = repetitions(scale, 2 * m * k * n);
        let fold = |acc: &[i32]| acc.iter().map(|&v| i64::from(v)).sum::<i64>();

        i8_checksum += fold(&matmul_i8(&a, &b, m, k, n)?);
        i8_checksum += fold(&matmul_i8_blocked(&a, &b, m, k, n)?);
        i8_checksum += fold(&matmul_i8_parallel(&a, &b, m, k, n)?);

        let start_ns = clock.now_ns();
        for _ in 0..reps {
            i8_checksum += fold(&matmul_i8(&a, &b, m, k, n)?);
        }
        let naive_ms = clock.now_ns().saturating_sub(start_ns) as f64 / 1e6 / reps as f64;

        let start_ns = clock.now_ns();
        for _ in 0..reps {
            i8_checksum += fold(&matmul_i8_blocked(&a, &b, m, k, n)?);
        }
        let blocked_ms = clock.now_ns().saturating_sub(start_ns) as f64 / 1e6 / reps as f64;

        let start_ns = clock.now_ns();
        for _ in 0..reps {
            i8_checksum += fold(&matmul_i8_parallel(&a, &b, m, k, n)?);
        }
        let parallel_ms = clock.now_ns().saturating_sub(start_ns) as f64 / 1e6 / reps as f64;

        // The hard gate: exact i32 equality between all three entry points.
        let naive = matmul_i8(&a, &b, m, k, n)?;
        let parity = matmul_i8_blocked(&a, &b, m, k, n)? == naive
            && matmul_i8_parallel(&a, &b, m, k, n)? == naive;
        i8_parity_everywhere &= parity;

        let speedup = naive_ms / blocked_ms.max(1e-9);
        if idx == SHAPES.len() - 1 {
            // The naive i8 loop is already lean, so the bar is "no slower",
            // not the f32 kernel's 2x.
            i8_blocked_competitive_at_large = speedup >= 1.0;
        }
        let tag = format!("{m}x{k}x{n}");
        i8_table.metric(format!("i8_naive_{tag}_us"), (naive_ms * 1000.0) as u64);
        i8_table.metric(format!("i8_blocked_{tag}_us"), (blocked_ms * 1000.0) as u64);
        i8_table.metric(
            format!("i8_parallel_{tag}_us"),
            (parallel_ms * 1000.0) as u64,
        );
        i8_table.row([
            tag,
            fmt3(naive_ms as f32),
            fmt3(blocked_ms as f32),
            fmt3(parallel_ms as f32),
            format!("{speedup:.2}x"),
            if parity { "bit-for-bit" } else { "DIVERGED" }.to_string(),
        ]);
    }
    i8_table.note(format!(
        "per-shape repetitions sized to a fixed flop budget; checksum {i8_checksum}"
    ));
    i8_table.check(
        "blocked and row-parallel i8 kernels are bit-for-bit identical to the \
         naive i8 loop at every shape",
        i8_parity_everywhere,
    );
    i8_table.timing_check(
        "blocked i8 kernel is no slower than the naive i8 loop at the large shape",
        i8_blocked_competitive_at_large,
    );

    Ok(vec![table, i8_table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_stay_bit_identical_and_blocked_is_competitive() {
        let tables = run(BenchScale::Quick).unwrap();
        assert_eq!(tables.len(), 2);
        let rendered = format!("{}\n{}", tables[0], tables[1]);
        // Deterministic gates: blocking must never change a single bit in
        // either precision, whatever the machine.
        assert!(
            rendered.matches("at every shape: holds").count() == 2,
            "bit parity gate failed:\n{rendered}"
        );
        // The speedup bars are wall-clock and advisory under an unoptimized
        // test profile; the release-built experiment binary is where the
        // acceptance number is read.
        if rendered.contains("below expectation") {
            eprintln!("warning: timing shape check missed in this environment:\n{rendered}");
        }
    }
}
