//! Beyond the paper — sharded, pipelined tier-2 escalation: the PR 2 serving
//! runtime's single escalation engine vs class-path shards
//! (`ClassPathSet::shard`) with the tier-2 sliver pipelined against the next
//! batch's screening.
//!
//! The workload forces every input through tier 2 (escalate-all band, cache
//! off), so the comparison isolates the tier-2 execution model:
//!
//! * **serial unsharded** — the PR 2/3 shape: one escalation engine, the
//!   sliver runs inline after its own batch's screen;
//! * **serial sharded** — the sliver splits across shard engines by screened
//!   class, still inline;
//! * **pipelined sharded** — the sliver is handed to the worker's bounded
//!   overlap thread, so tier-2 extraction of batch *k* runs concurrently with
//!   tier-1 screening of batch *k+1* (the `TraceSink` streaming drivers keep
//!   the in-flight sliver at its retained boundaries only).
//!
//! Shapes to check: whatever the mode, served verdicts are **bit-for-bit**
//! the unsharded escalation engine's direct verdicts (checked per mode, not
//! assumed); escalations spread across the shards; and pipelined tier-2
//! throughput is no worse than serial tier-2 (within wall-clock noise — the
//! modes execute identical arithmetic, pipelining only overlaps it).

use std::sync::Arc;
use std::time::Duration;

use ptolemy_attacks::Fgsm;
use ptolemy_core::{variants, DetectionEngine};
use ptolemy_obs::Clock;
use ptolemy_serve::{BatchPolicy, Served, Server, ServerBuilder, Ticket};
use ptolemy_tensor::Tensor;

use crate::{fmt3, BenchResult, BenchScale, Table, Workbench};

/// Shard counts exercised by the shard-routing table.
const SHARD_COUNTS: [usize; 2] = [2, 4];

/// Timing rounds per mode: interleaved fastest-of rounds, so a scheduler
/// hiccup landing on one mode cannot flip the comparison.
const TIMING_ROUNDS: usize = 5;

fn duplication(scale: BenchScale) -> usize {
    match scale {
        BenchScale::Quick => 4,
        BenchScale::Full => 16,
    }
}

/// One serving mode under measurement.
struct Mode {
    label: &'static str,
    shards: usize,
    pipelined: bool,
}

const MODES: [Mode; 3] = [
    Mode {
        label: "serial, unsharded (1 engine)",
        shards: 1,
        pipelined: false,
    },
    Mode {
        label: "serial, sharded (2 engines)",
        shards: 2,
        pipelined: false,
    },
    Mode {
        label: "pipelined, sharded (2 engines)",
        shards: 2,
        pipelined: true,
    },
];

/// Escalation shard engines over `full`'s canary set, forest and threshold.
fn shard_engines(
    network: &Arc<ptolemy_nn::Network>,
    full: &DetectionEngine,
    n: usize,
) -> BenchResult<Vec<Arc<DetectionEngine>>> {
    full.class_paths()
        .shard(n)?
        .into_iter()
        .map(|paths| {
            Ok(Arc::new(
                DetectionEngine::builder(network.clone(), full.program().clone(), paths)
                    .forest(full.forest().expect("calibrated engine").clone())
                    .threshold(full.threshold())
                    .build()?,
            ))
        })
        .collect()
}

fn server(
    screen: &Arc<DetectionEngine>,
    shards: Vec<Arc<DetectionEngine>>,
    pipelined: bool,
    queue: usize,
) -> BenchResult<Server> {
    // One worker and eagerly-cut small batches: the pipeline (worker screens
    // batch k+1 while the overlap thread escalates batch k) is then the only
    // source of concurrency between the tiers, which is what this experiment
    // measures.
    let builder: ServerBuilder = Server::builder(screen.clone())
        .escalate_sharded(shards, 0.0, 1.0) // everything escalates
        .workers(1)
        .queue_capacity(queue)
        .batch_policy(BatchPolicy {
            max_batch: 4,
            latency_budget: Duration::ZERO,
            ..BatchPolicy::default()
        })
        .pipeline_escalation(pipelined);
    Ok(builder.start()?)
}

fn serve_all(server: &Server, workload: &[Tensor]) -> BenchResult<Vec<Served>> {
    let tickets: Vec<Ticket> = workload
        .iter()
        .map(|input| server.submit(input.clone()))
        .collect::<Result<_, _>>()?;
    Ok(tickets
        .into_iter()
        .map(Ticket::wait)
        .collect::<Result<_, _>>()?)
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench, engine and server errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::lenet_small(scale)?;
    let screen_program = variants::fw_ab(&wb.network, 0.05)?;
    let expensive_program = variants::bw_cu(&wb.network, 0.5)?;
    let screen_paths = wb.profile(&screen_program)?;
    let expensive_paths = wb.profile(&expensive_program)?;

    let limit = wb.scale.attack_samples();
    let benign = wb.benign_inputs(limit);
    let adversarial = wb.adversarial_inputs(&Fgsm::new(0.25), limit)?;

    let screen = Arc::new(
        DetectionEngine::builder(wb.network.clone(), screen_program, screen_paths)
            .calibrate(&benign, &adversarial)
            .build()?,
    );
    let full = Arc::new(
        DetectionEngine::builder(wb.network.clone(), expensive_program, expensive_paths)
            .calibrate(&benign, &adversarial)
            .build()?,
    );

    let mut workload = Vec::new();
    for _ in 0..duplication(scale) {
        for (b, a) in benign.iter().zip(&adversarial) {
            workload.push(b.clone());
            workload.push(a.clone());
        }
    }

    // Direct tier-2 verdicts: the parity baseline every mode must reproduce.
    let direct: Vec<_> = workload
        .iter()
        .map(|input| full.detect(input))
        .collect::<Result<_, _>>()?;

    let mut table = Table::new(
        "Sharded, pipelined tier-2 escalation — FwAb screen, BwCu escalation, \
         escalate-all band (1 worker, batch cap 4)",
    )
    .header([
        "tier-2 mode",
        "throughput (inputs/s)",
        "vs serial unsharded",
        "escalated",
        "pipelined/serial batches",
        "bit parity",
    ]);

    let mut parity_everywhere = true;
    let mut pipelined_ok = true;
    let mut throughputs = [0.0f64; MODES.len()];
    // Interleave the modes across timing rounds; keep each mode's fastest.
    let clock = Clock::monotonic();
    let mut best_ms = [f64::INFINITY; MODES.len()];
    for _ in 0..TIMING_ROUNDS {
        for (index, mode) in MODES.iter().enumerate() {
            let shards = shard_engines(&wb.network, &full, mode.shards)?;
            let server = server(&screen, shards, mode.pipelined, workload.len())?;
            let start_ns = clock.now_ns();
            serve_all(&server, &workload)?;
            let pass_ms = clock.now_ns().saturating_sub(start_ns) as f64 / 1e6;
            best_ms[index] = best_ms[index].min(pass_ms);
            server.shutdown();
        }
    }
    for (index, mode) in MODES.iter().enumerate() {
        // A fresh (untimed) pass per mode for parity and the counters.
        let shards = shard_engines(&wb.network, &full, mode.shards)?;
        let server = server(&screen, shards, mode.pipelined, workload.len())?;
        let served = serve_all(&server, &workload)?;
        let stats = server.shutdown();

        let parity = served.iter().zip(&direct).all(|(served, direct)| {
            served.detection.score.to_bits() == direct.score.to_bits()
                && served.detection.similarity.to_bits() == direct.similarity.to_bits()
                && served.detection.is_adversary == direct.is_adversary
                && served.detection.predicted_class == direct.predicted_class
        });
        parity_everywhere &= parity;

        let throughput = workload.len() as f64 / (best_ms[index] / 1000.0).max(1e-9);
        throughputs[index] = throughput;
        table.metric(
            format!("{} throughput_milli", mode.label),
            (throughput * 1000.0) as u64,
        );
        table.row([
            mode.label.to_string(),
            fmt3(throughput as f32),
            format!("{:.3}x", throughput / throughputs[0].max(1e-9)),
            stats.escalated.to_string(),
            format!("{}/{}", stats.pipelined_batches, stats.serial_batches),
            if parity { "bit-for-bit" } else { "DIVERGED" }.to_string(),
        ]);
    }
    // The acceptance bar: pipelined tier-2 throughput no worse than serial
    // tier-2 (same sharding), within 5% of wall-clock noise.
    if throughputs[2] < 0.95 * throughputs[1] {
        pipelined_ok = false;
    }
    table.note(format!(
        "{} inputs per pass, fastest of {TIMING_ROUNDS} interleaved rounds per mode; \
         {} core(s) — on a single core the pipeline has no spare core to overlap \
         on and degrades to parity, the win appears with the second core",
        workload.len(),
        ptolemy_nn::available_parallelism(),
    ));

    // Shard routing: escalations spread across shards by screened class.
    let mut routing = Table::new("Shard routing — escalations per tier-2 shard (pipelined)")
        .header(["shards", "per-shard escalations", "sum == escalated"]);
    let mut routing_ok = true;
    for &n in &SHARD_COUNTS {
        let shards = shard_engines(&wb.network, &full, n)?;
        let server = server(&screen, shards, true, workload.len())?;
        serve_all(&server, &workload)?;
        let stats = server.shutdown();
        let spread = stats.shard_escalations.iter().filter(|&&c| c > 0).count();
        routing_ok &= stats.shard_escalations.iter().sum::<u64>() == stats.escalated;
        // With 4 classes in the workload every 2-shard split must use both
        // shards; a 4-shard split uses as many as the workload's classes.
        routing_ok &= spread >= 2;
        routing.row([
            n.to_string(),
            format!("{:?}", stats.shard_escalations),
            (stats.shard_escalations.iter().sum::<u64>() == stats.escalated).to_string(),
        ]);
    }

    let mut summary = Table::new("Sharded escalation — shape checks");
    summary.check(
        "served verdicts bit-for-bit identical to the unsharded escalation \
         engine in every mode",
        parity_everywhere,
    );
    summary.check(
        "escalations route across shards and sum to the tier-2 total",
        routing_ok,
    );
    summary.timing_check(
        "pipelined tier-2 throughput no worse than serial (within 5% timing \
         noise)",
        pipelined_ok,
    );
    Ok(vec![table, routing, summary])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_pipeline_is_bit_identical_and_routes_across_shards() {
        let tables = run(BenchScale::Quick).unwrap();
        assert_eq!(tables.len(), 3);
        let summary = tables[2].to_string();
        // Deterministic checks: parity and shard routing must hold on any
        // machine.
        assert!(
            summary.contains("in every mode: holds"),
            "bit parity shape check failed:\n{summary}"
        );
        assert!(
            summary.contains("tier-2 total: holds"),
            "shard routing shape check failed:\n{summary}"
        );
        // The throughput comparison is wall-clock and can lose on a heavily
        // oversubscribed test runner; in the test it is advisory, the
        // release-built experiment binary is where the acceptance number is
        // read.
        if summary.contains("timing noise): below expectation") {
            eprintln!(
                "warning: pipelined tier-2 slower than serial in this \
                 environment (timing-dependent):\n{summary}"
            );
        }
    }
}
