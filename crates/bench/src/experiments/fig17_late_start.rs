//! Fig. 17a/17b — late start of forward extraction (FwAb).
//!
//! Forward extraction can skip the early layers ("late start").  The paper sweeps
//! the start layer of the 8-layer AlexNet and finds that accuracy improves as more
//! layers are covered (start earlier), latency barely moves — extraction is hidden
//! behind inference regardless — and energy drops by ~8.4 % when starting late
//! because less work is done.
//!
//! Shape to check: latency stays within a few percent of inference across the whole
//! sweep while energy decreases as the start layer moves later.

use ptolemy_accel::HardwareConfig;
use ptolemy_core::variants;

use crate::{auc_summary, fmt3, fmt_factor, BenchResult, BenchScale, Table, Workbench};

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench, attack, compiler and hardware-model errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::alexnet_imagenet(scale)?;
    let attack_sets = wb.attack_sets()?;
    let benign = wb.benign_inputs(scale.attack_samples());
    let config = HardwareConfig::default();
    let phi = wb.calibrate_phi(true)?;

    let num_layers = wb.network.weight_layer_indices().len();
    let mut table = Table::new("Fig. 17 — FwAb late start (AlexNet-class)").header([
        "start layer",
        "layers extracted",
        "AUC",
        "latency",
        "energy",
    ]);

    let mut aucs = Vec::new();
    let mut latencies = Vec::new();
    let mut energies = Vec::new();
    // Paper x-axis runs from starting at the last layer (start layer 8, one layer
    // extracted) to starting at the first (start layer 1, everything extracted).
    for start_ordinal in (0..num_layers).rev() {
        let program = variants::fw_ab_late_start(&wb.network, phi, start_ordinal)?;
        let class_paths = wb.profile(&program)?;
        let per_attack: Vec<(String, f32)> = attack_sets
            .iter()
            .map(|(attack, adversarial)| {
                wb.detection_auc(&program, &class_paths, &benign, adversarial)
                    .map(|a| (attack.clone(), a))
            })
            .collect::<BenchResult<_>>()?;
        let (mean, _, _) = auc_summary(&per_attack);
        let density = wb.measured_density(&program)?;
        let report = wb.variant_cost(&program, &config, density)?;
        aucs.push(mean);
        latencies.push(report.latency_factor());
        energies.push(report.energy_factor());
        table.row([
            (start_ordinal + 1).to_string(),
            (num_layers - start_ordinal).to_string(),
            fmt3(mean),
            fmt_factor(report.latency_factor()),
            fmt_factor(report.energy_factor()),
        ]);
    }

    table.note("paper: starting later does not reduce latency (it is already hidden) but saves ~8.4 % energy".to_string());
    let max_latency = latencies.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min_latency = latencies.iter().copied().fold(f64::INFINITY, f64::min);
    table.note(format!(
        "latency range across the sweep: {} .. {}",
        fmt_factor(min_latency),
        fmt_factor(max_latency),
    ));
    table.check(
        "latency stays nearly flat across the sweep",
        max_latency - min_latency < 0.5,
    );
    if let (Some(first), Some(last)) = (energies.first(), energies.last()) {
        table.note(format!(
            "energy: {} late start -> {} full",
            fmt_factor(*first),
            fmt_factor(*last),
        ));
        table.check("extracting more layers consumes more energy", last >= first);
    }
    if let (Some(first), Some(last)) = (aucs.first(), aucs.last()) {
        table.note(format!(
            "AUC trajectory: {} -> {}",
            fmt3(*first),
            fmt3(*last)
        ));
        table.check(
            "covering more layers does not hurt accuracy",
            *last >= *first - 0.05,
        );
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    #[test]
    fn start_layer_axis_covers_every_ordinal_once() {
        let num_layers = 8usize;
        let starts: Vec<usize> = (0..num_layers).rev().collect();
        assert_eq!(starts.len(), 8);
        assert_eq!(starts[0], 7);
        assert_eq!(*starts.last().unwrap(), 0);
    }
}
