//! Sec. III-B — cost analysis of a pure-software implementation.
//!
//! Before introducing the hardware, the paper quantifies why a software-only
//! implementation of the detection framework is impractical: every partial sum must
//! be written to memory (9–420× more data than the activations the inference itself
//! produces), sorting/accumulating them adds up to ~30 % extra operations at
//! θ = 0.9, and because sorting has none of the parallelism of inference the
//! end-to-end software slowdown is 15.4× on AlexNet and 50.7× on ResNet-50.
//!
//! Shape to check: the memory overhead of cumulative thresholds is at least an
//! order of magnitude, absolute thresholds reduce it dramatically, and the compute
//! overhead stays a modest fraction of inference MACs (important neurons are rare).

use ptolemy_core::{software_cost, variants};
use ptolemy_nn::{zoo, Network};
use ptolemy_tensor::Rng64;

use crate::{fmt_percent, BenchResult, BenchScale, Table};

/// Estimated end-to-end software slowdown: inference is massively parallel, the
/// extraction operations are not, so every sort/compare/accumulate op costs roughly
/// one scalar cycle against `parallel_lanes` MACs per cycle for inference.
fn serial_slowdown(report: &ptolemy_core::SoftwareCostReport, parallel_lanes: f64) -> f64 {
    let inference_cycles = report.inference_macs as f64 / parallel_lanes;
    let extraction_cycles =
        (report.sort_elements + report.compare_ops + report.accumulate_ops) as f64;
    1.0 + extraction_cycles / inference_cycles
}

/// Runs the experiment.
///
/// The analysis is structural, so the networks are used untrained with the paper's
/// observation that the important-neuron density stays below ~5 %.
///
/// # Errors
///
/// Propagates program-construction errors.
pub fn run(_scale: BenchScale) -> BenchResult<Vec<Table>> {
    let mut rng = Rng64::new(0x3B);
    let models: Vec<(&str, Network, f64)> = vec![
        ("AlexNet-class", zoo::conv_net(10, &mut rng)?, 15.4),
        ("ResNet-class", zoo::resnet_mini(10, &mut rng)?, 50.7),
    ];
    let density = 0.05;

    let mut table = Table::new("Sec. III-B — software cost of the basic detection algorithm")
        .header([
            "model / algorithm",
            "memory overhead",
            "compute overhead",
            "est. software slowdown",
        ]);

    let mut cumulative_memory = Vec::new();
    let mut absolute_memory = Vec::new();
    for (name, network, paper_slowdown) in &models {
        let bwcu = variants::bw_cu(network, 0.9)?;
        let report = software_cost(network, &bwcu, density)?;
        cumulative_memory.push(report.memory_overhead_ratio());
        table.row([
            format!("{name} BwCu theta=0.9"),
            format!("{:.1}x", report.memory_overhead_ratio()),
            fmt_percent(100.0 * report.compute_overhead_ratio()),
            format!(
                "{:.1}x (paper {paper_slowdown:.1}x)",
                serial_slowdown(&report, 400.0)
            ),
        ]);

        let bwab = variants::bw_ab(network, 0.1)?;
        let report = software_cost(network, &bwab, density)?;
        absolute_memory.push(report.memory_overhead_ratio());
        table.row([
            format!("{name} BwAb"),
            format!("{:.1}x", report.memory_overhead_ratio()),
            fmt_percent(100.0 * report.compute_overhead_ratio()),
            format!("{:.1}x", serial_slowdown(&report, 400.0)),
        ]);
    }

    table.note("paper: cumulative thresholds store 9x-420x more data than inference activations; compute overhead ~30 % at theta=0.9; software slowdown 15.4x (AlexNet) / 50.7x (ResNet50)".to_string());
    table.check(
        "cumulative-threshold memory overhead is >= 5x on every model",
        cumulative_memory.iter().all(|m| *m >= 5.0),
    );
    table.check(
        "absolute thresholds cut the memory overhead by >= 10x",
        cumulative_memory
            .iter()
            .zip(&absolute_memory)
            .all(|(c, a)| *c >= 10.0 * *a),
    );
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_slowdown_is_at_least_one() {
        let report = ptolemy_core::SoftwareCostReport {
            inference_macs: 1000,
            sort_elements: 500,
            compare_ops: 500,
            accumulate_ops: 0,
            ..Default::default()
        };
        assert!(serial_slowdown(&report, 400.0) > 1.0);
    }
}
