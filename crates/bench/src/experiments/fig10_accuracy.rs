//! Fig. 10a/10b — detection accuracy of the four Ptolemy variants vs EP and CDRP.
//!
//! The paper reports that on AlexNet @ ImageNet the backward-extraction variants
//! (BwCu, BwAb, Hybrid) beat EP by up to 0.02 AUC and CDRP by up to 0.1, while FwAb
//! gives up 0.03 against EP in exchange for its much lower cost; on ResNet-18 @
//! CIFAR-100 every Ptolemy variant beats CDRP by 0.14–0.16 and is within 0.01 of EP.
//! Error bars in the figure are the min/max over the five attacks.
//!
//! Shape to check: the Ptolemy variants and EP cluster together at the top, CDRP
//! trails, and FwAb sits at or slightly below the backward variants.

use ptolemy_baselines::{BaselineDetector, CdrpDefense, EpDefense};
use ptolemy_core::{ClassPathSet, DetectionProgram};
use ptolemy_forest::auc;
use ptolemy_nn::Network;
use ptolemy_tensor::Tensor;

use crate::{auc_summary, fmt3, BenchResult, BenchScale, Table, Workbench};

/// AUC of a baseline detector over one benign/adversarial split.
fn baseline_auc(
    detector: &dyn BaselineDetector,
    network: &Network,
    benign: &[Tensor],
    adversarial: &[Tensor],
) -> BenchResult<f32> {
    let mut scores = Vec::with_capacity(benign.len() + adversarial.len());
    let mut labels = Vec::with_capacity(benign.len() + adversarial.len());
    for input in benign {
        scores.push(detector.score(network, input)?);
        labels.push(false);
    }
    for input in adversarial {
        scores.push(detector.score(network, input)?);
        labels.push(true);
    }
    Ok(auc(&scores, &labels)?)
}

fn variant_rows(
    table: &mut Table,
    wb: &Workbench,
    variants: &[(String, DetectionProgram)],
    class_paths: &[ClassPathSet],
    benign: &[Tensor],
    attack_sets: &[(String, Vec<Tensor>)],
) -> BenchResult<Vec<(String, f32)>> {
    let mut summaries = Vec::new();
    for ((name, program), paths) in variants.iter().zip(class_paths) {
        let per_attack: Vec<(String, f32)> = attack_sets
            .iter()
            .map(|(attack, adversarial)| {
                wb.detection_auc(program, paths, benign, adversarial)
                    .map(|a| (attack.clone(), a))
            })
            .collect::<BenchResult<_>>()?;
        let (mean, min, max) = auc_summary(&per_attack);
        table.row([name.clone(), fmt3(mean), fmt3(min), fmt3(max)]);
        summaries.push((name.clone(), mean));
    }
    Ok(summaries)
}

fn run_one(wb: &Workbench, title: &str) -> BenchResult<Table> {
    let mut table = Table::new(title).header(["detector", "mean AUC", "min", "max"]);
    let attack_sets = wb.attack_sets()?;
    let benign = wb.benign_inputs(wb.scale.attack_samples());

    // Ptolemy variants.
    let variants = wb.ptolemy_variants(0.5)?;
    let class_paths: Vec<ClassPathSet> = variants
        .iter()
        .map(|(_, p)| wb.profile(p))
        .collect::<BenchResult<_>>()?;
    let ptolemy = variant_rows(
        &mut table,
        wb,
        &variants,
        &class_paths,
        &benign,
        &attack_sets,
    )?;

    // EP baseline.
    let ep = EpDefense::fit(&wb.network, wb.dataset.train(), 0.5)?;
    let ep_per_attack: Vec<(String, f32)> = attack_sets
        .iter()
        .map(|(attack, adversarial)| {
            baseline_auc(&ep, &wb.network, &benign, adversarial).map(|a| (attack.clone(), a))
        })
        .collect::<BenchResult<_>>()?;
    let (ep_mean, ep_min, ep_max) = auc_summary(&ep_per_attack);
    table.row(["EP".to_string(), fmt3(ep_mean), fmt3(ep_min), fmt3(ep_max)]);

    // CDRP baseline, calibrated on the first attack's adversarial set.
    let calibration = &attack_sets[0].1;
    let cdrp = CdrpDefense::fit(&wb.network, wb.dataset.train(), &benign, calibration)?;
    let cdrp_per_attack: Vec<(String, f32)> = attack_sets
        .iter()
        .map(|(attack, adversarial)| {
            baseline_auc(&cdrp, &wb.network, &benign, adversarial).map(|a| (attack.clone(), a))
        })
        .collect::<BenchResult<_>>()?;
    let (cdrp_mean, cdrp_min, cdrp_max) = auc_summary(&cdrp_per_attack);
    table.row([
        "CDRP".to_string(),
        fmt3(cdrp_mean),
        fmt3(cdrp_min),
        fmt3(cdrp_max),
    ]);

    let best_ptolemy = ptolemy
        .iter()
        .map(|(_, v)| *v)
        .fold(f32::NEG_INFINITY, f32::max);
    table.note("paper: Ptolemy backward variants beat EP by up to 0.02 and CDRP by 0.1–0.16; FwAb gives up ~0.03 vs EP".to_string());
    table.note(format!(
        "best Ptolemy {} vs EP {} vs CDRP {}",
        fmt3(best_ptolemy),
        fmt3(ep_mean),
        fmt3(cdrp_mean),
    ));
    table.metric(
        "best_ptolemy_auc_milli",
        (best_ptolemy * 1000.0).max(0.0) as u64,
    );
    table.check(
        "best Ptolemy variant is at least EP-competitive",
        best_ptolemy + 0.03 >= ep_mean,
    );
    table.check("best Ptolemy variant beats CDRP", best_ptolemy >= cdrp_mean);
    Ok(table)
}

/// Runs the experiment (both sub-figures).
///
/// # Errors
///
/// Propagates workbench, attack and baseline errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let imagenet = Workbench::alexnet_imagenet(scale)?;
    let cifar = Workbench::resnet_cifar100(scale)?;
    Ok(vec![
        run_one(
            &imagenet,
            "Fig. 10a — accuracy, AlexNet-class @ synth-ImageNet",
        )?,
        run_one(
            &cifar,
            "Fig. 10b — accuracy, ResNet18-class @ synth-CIFAR-100",
        )?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptolemy_attacks::{Attack, Fgsm};

    #[test]
    fn baseline_auc_is_bounded_and_orders_a_trivial_case() {
        let wb = Workbench::lenet_small(crate::BenchScale::Quick).unwrap();
        let ep = EpDefense::fit(&wb.network, wb.dataset.train(), 0.5).unwrap();
        let benign = wb.benign_inputs(6);
        let adversarial: Vec<Tensor> = wb
            .dataset
            .test()
            .iter()
            .take(6)
            .map(|(x, y)| Fgsm::new(0.5).perturb(&wb.network, x, *y).unwrap().input)
            .collect();
        let auc = baseline_auc(&ep, &wb.network, &benign, &adversarial).unwrap();
        assert!((0.0..=1.0).contains(&auc));
    }
}
