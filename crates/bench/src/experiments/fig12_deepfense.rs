//! Fig. 12a/12b — comparison against DeepFense (DFL / DFM / DFH) on ResNet-18 @
//! CIFAR-10.
//!
//! DeepFense defends by running redundant latent defender models next to the victim
//! network.  The paper re-hosts it on the same accelerator and finds that every
//! Ptolemy variant is more accurate than even the 16-module DFH (FwAb, the weakest
//! Ptolemy variant, beats DFH by 0.11 on average), while BwAb/FwAb are also cheaper
//! than even the single-module DFL (FwAb cuts latency/energy overhead by 89 %/59 %
//! vs DFL).
//!
//! Shape to check: Ptolemy variants above DeepFense in accuracy; FwAb cheaper than
//! DFL; DeepFense cost grows with the number of modules.

use ptolemy_accel::HardwareConfig;
use ptolemy_baselines::{BaselineDetector, DeepFenseDefense, DeepFenseVariant};
use ptolemy_forest::auc;

use crate::{auc_summary, fmt3, fmt_factor, BenchResult, BenchScale, Table, Workbench};

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench, attack, baseline and hardware-model errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::resnet_cifar10(scale)?;
    let config = HardwareConfig::default();
    let attack_sets = wb.attack_sets()?;
    let benign = wb.benign_inputs(scale.attack_samples());

    let mut accuracy =
        Table::new("Fig. 12a — accuracy vs DeepFense (ResNet18-class @ synth-CIFAR-10)")
            .header(["detector", "mean AUC", "min", "max"]);
    let mut cost = Table::new("Fig. 12b — latency/energy vs DeepFense")
        .header(["detector", "latency", "energy"]);

    // Ptolemy variants: accuracy and cost.
    let mut ptolemy_min_auc = f32::INFINITY;
    let mut fwab_cost = None;
    for (name, program) in wb.ptolemy_variants(0.5)? {
        let class_paths = wb.profile(&program)?;
        let per_attack: Vec<(String, f32)> = attack_sets
            .iter()
            .map(|(attack, adversarial)| {
                wb.detection_auc(&program, &class_paths, &benign, adversarial)
                    .map(|a| (attack.clone(), a))
            })
            .collect::<BenchResult<_>>()?;
        let (mean, min, max) = auc_summary(&per_attack);
        ptolemy_min_auc = ptolemy_min_auc.min(mean);
        accuracy.row([name.clone(), fmt3(mean), fmt3(min), fmt3(max)]);

        let density = wb.measured_density(&program)?;
        let report = wb.variant_cost(&program, &config, density)?;
        if name == "FwAb" {
            fwab_cost = Some((report.latency_factor(), report.energy_factor()));
        }
        cost.row([
            name,
            fmt_factor(report.latency_factor()),
            fmt_factor(report.energy_factor()),
        ]);
    }

    // DeepFense variants: calibrate the defenders on the first attack's examples and
    // evaluate against every attack.
    let calibration = &attack_sets[0].1;
    let mut best_deepfense_auc = f32::NEG_INFINITY;
    let mut dfl_cost = None;
    for variant in [
        DeepFenseVariant::Light,
        DeepFenseVariant::Medium,
        DeepFenseVariant::High,
    ] {
        let defense = DeepFenseDefense::fit(&wb.network, variant, &benign, calibration, 0xDF)?;
        let per_attack: Vec<(String, f32)> = attack_sets
            .iter()
            .map(|(attack, adversarial)| -> BenchResult<(String, f32)> {
                let mut scores = Vec::new();
                let mut labels = Vec::new();
                for input in &benign {
                    scores.push(defense.score(&wb.network, input)?);
                    labels.push(false);
                }
                for input in adversarial {
                    scores.push(defense.score(&wb.network, input)?);
                    labels.push(true);
                }
                Ok((attack.clone(), auc(&scores, &labels)?))
            })
            .collect::<BenchResult<_>>()?;
        let (mean, min, max) = auc_summary(&per_attack);
        best_deepfense_auc = best_deepfense_auc.max(mean);
        accuracy.row([
            variant.label().to_string(),
            fmt3(mean),
            fmt3(min),
            fmt3(max),
        ]);

        let (latency, energy) = defense.cost(&wb.network, &config)?;
        if variant == DeepFenseVariant::Light {
            dfl_cost = Some((latency, energy));
        }
        cost.row([
            variant.label().to_string(),
            fmt_factor(latency),
            fmt_factor(energy),
        ]);
    }

    accuracy.note(
        "paper: FwAb (weakest Ptolemy variant) beats DFH (strongest DeepFense) by 0.11 on average"
            .to_string(),
    );
    accuracy.note(format!(
        "weakest Ptolemy variant vs best DeepFense: {} vs {}",
        fmt3(ptolemy_min_auc),
        fmt3(best_deepfense_auc),
    ));
    accuracy.check(
        "weakest Ptolemy variant competitive with best DeepFense",
        ptolemy_min_auc >= best_deepfense_auc - 0.05,
    );
    if let (Some((fw_lat, fw_en)), Some((dfl_lat, dfl_en))) = (fwab_cost, dfl_cost) {
        cost.note("paper: FwAb reduces latency/energy overhead by 89 %/59 % vs DFL".to_string());
        cost.note(format!(
            "FwAb vs DFL overhead: latency {} vs {}, energy {} vs {}",
            fmt_factor(fw_lat),
            fmt_factor(dfl_lat),
            fmt_factor(fw_en),
            fmt_factor(dfl_en),
        ));
        cost.check(
            "FwAb latency overhead below DFL overhead",
            fw_lat - 1.0 <= dfl_lat - 1.0,
        );
        cost.check(
            "FwAb energy overhead within 1.5x of DFL overhead",
            fw_en - 1.0 <= (dfl_en - 1.0) * 1.5,
        );
    }
    Ok(vec![accuracy, cost])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deepfense_variant_order_is_light_medium_high() {
        let order = [
            DeepFenseVariant::Light,
            DeepFenseVariant::Medium,
            DeepFenseVariant::High,
        ];
        assert!(order
            .windows(2)
            .all(|w| w[0].num_modules() < w[1].num_modules()));
    }
}
