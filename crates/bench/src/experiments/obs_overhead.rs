//! Beyond the paper — observability overhead: the serving runtime with no
//! instrumentation vs a `ptolemy_obs::Registry` attached-but-disabled vs
//! fully enabled, on the same tiered workload.
//!
//! The serving runtime's per-stage instrumentation sits behind one relaxed
//! atomic load (`Registry::enabled`): when the registry is disabled — or not
//! attached at all — the hot path does no clock reads, no histogram inserts
//! and no timeline bookkeeping.  This experiment is the acceptance harness
//! for that claim.
//!
//! Shapes to check: verdicts are bit-for-bit identical across all three
//! modes (instrumentation must never touch results); the enabled registry
//! actually records every stage; and — advisory, wall-clock — the
//! attached-but-disabled throughput stays within 3% of the uninstrumented
//! baseline.

use std::sync::Arc;
use std::time::Duration;

use ptolemy_attacks::Fgsm;
use ptolemy_core::{variants, DetectionEngine};
use ptolemy_obs::json::JsonValue;
use ptolemy_obs::{Clock, Registry};
use ptolemy_serve::{BatchPolicy, Served, Server, ServerBuilder, Ticket};
use ptolemy_tensor::Tensor;

use crate::{fmt3, BenchResult, BenchScale, Table, Workbench};

/// Escalation band: screening scores in this range re-score on the BwCu tier.
const BAND: (f32, f32) = (0.3, 0.7);

/// How many times each unique input repeats in the served stream.
const DUPLICATION: usize = 6;

/// Timing rounds per mode: interleaved fastest-of rounds, so a scheduler
/// hiccup landing on one mode cannot flip the comparison.
const TIMING_ROUNDS: usize = 5;

/// The disabled-instrumentation acceptance bar: attached-but-disabled
/// throughput must stay within this fraction of the uninstrumented baseline.
const OVERHEAD_TOLERANCE: f64 = 0.03;

/// One instrumentation mode under measurement.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ObsMode {
    /// No registry attached — the pre-obs server shape.
    Uninstrumented,
    /// Registry attached with `set_enabled(false)` — the production default
    /// when metrics are off.
    AttachedDisabled,
    /// Registry attached and enabled — full per-stage recording.
    Enabled,
}

impl ObsMode {
    fn label(self) -> &'static str {
        match self {
            ObsMode::Uninstrumented => "uninstrumented",
            ObsMode::AttachedDisabled => "attached, disabled",
            ObsMode::Enabled => "attached, enabled",
        }
    }
}

const MODES: [ObsMode; 3] = [
    ObsMode::Uninstrumented,
    ObsMode::AttachedDisabled,
    ObsMode::Enabled,
];

fn server(
    screen: &Arc<DetectionEngine>,
    expensive: &Arc<DetectionEngine>,
    mode: ObsMode,
    queue: usize,
) -> BenchResult<(Server, Option<Arc<Registry>>)> {
    let mut builder: ServerBuilder = Server::builder(screen.clone())
        .escalate(expensive.clone(), BAND.0, BAND.1)
        .workers(2)
        .queue_capacity(queue)
        .batch_policy(BatchPolicy {
            max_batch: 8,
            latency_budget: Duration::from_millis(1),
            ..BatchPolicy::default()
        });
    let registry = match mode {
        ObsMode::Uninstrumented => None,
        ObsMode::AttachedDisabled | ObsMode::Enabled => {
            let registry = Arc::new(Registry::new("bench.obs_overhead"));
            registry.set_enabled(mode == ObsMode::Enabled);
            builder = builder.instrument(registry.clone());
            Some(registry)
        }
    };
    Ok((builder.start()?, registry))
}

fn serve_all(server: &Server, workload: &[Tensor]) -> BenchResult<Vec<Served>> {
    let tickets: Vec<Ticket> = workload
        .iter()
        .map(|input| server.submit(input.clone()))
        .collect::<Result<_, _>>()?;
    Ok(tickets
        .into_iter()
        .map(Ticket::wait)
        .collect::<Result<_, _>>()?)
}

/// Sum of recorded stage-histogram counts in a registry snapshot.
fn recorded_samples(registry: &Registry) -> u64 {
    let snapshot = registry.snapshot();
    let Some(JsonValue::Object(histograms)) = snapshot.get("histograms").cloned() else {
        return 0;
    };
    histograms
        .iter()
        .filter_map(|(_, h)| h.get("total").and_then(JsonValue::as_u64))
        .sum()
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench, engine and server errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::lenet_small(scale)?;
    let phi = wb.calibrate_phi(true)?;
    let screen_program = variants::fw_ab(&wb.network, phi)?;
    let expensive_program = variants::bw_cu(&wb.network, 0.5)?;
    let screen_paths = wb.profile(&screen_program)?;
    let expensive_paths = wb.profile(&expensive_program)?;

    let limit = wb.scale.attack_samples();
    let benign = wb.benign_inputs(limit);
    let adversarial = wb.adversarial_inputs(&Fgsm::new(0.25), limit)?;

    let screen = Arc::new(
        DetectionEngine::builder(wb.network.clone(), screen_program, screen_paths)
            .calibrate(&benign, &adversarial)
            .build()?,
    );
    let expensive = Arc::new(
        DetectionEngine::builder(wb.network.clone(), expensive_program, expensive_paths)
            .calibrate(&benign, &adversarial)
            .build()?,
    );

    let mut workload = Vec::new();
    for _ in 0..DUPLICATION {
        for (b, a) in benign.iter().zip(&adversarial) {
            workload.push(b.clone());
            workload.push(a.clone());
        }
    }

    let mut table = Table::new(
        "Observability overhead — serving throughput with no registry vs \
         attached-but-disabled vs enabled (FwAb screen, BwCu escalation)",
    )
    .header([
        "instrumentation",
        "throughput (inputs/s)",
        "vs uninstrumented",
        "stage samples recorded",
    ]);

    // Interleave the modes across timing rounds; keep each mode's fastest.
    let clock = Clock::monotonic();
    let mut best_ms = [f64::INFINITY; MODES.len()];
    for _ in 0..TIMING_ROUNDS {
        for (index, &mode) in MODES.iter().enumerate() {
            let (server, _) = server(&screen, &expensive, mode, workload.len())?;
            let start_ns = clock.now_ns();
            serve_all(&server, &workload)?;
            let pass_ms = clock.now_ns().saturating_sub(start_ns) as f64 / 1e6;
            best_ms[index] = best_ms[index].min(pass_ms);
            server.shutdown();
        }
    }

    // Fresh untimed passes per mode: parity baselines and recorded-sample
    // counts (deterministic, whatever the machine).
    let mut verdicts: Vec<Vec<Served>> = Vec::new();
    let mut samples = [0u64; MODES.len()];
    for (index, &mode) in MODES.iter().enumerate() {
        let (server, registry) = server(&screen, &expensive, mode, workload.len())?;
        verdicts.push(serve_all(&server, &workload)?);
        server.shutdown();
        samples[index] = registry.as_deref().map_or(0, recorded_samples);
    }
    let parity = verdicts[1..].iter().all(|served| {
        served.iter().zip(&verdicts[0]).all(|(a, b)| {
            a.detection.score.to_bits() == b.detection.score.to_bits()
                && a.detection.similarity.to_bits() == b.detection.similarity.to_bits()
                && a.detection.is_adversary == b.detection.is_adversary
                && a.detection.predicted_class == b.detection.predicted_class
        })
    });

    let mut throughputs = [0.0f64; MODES.len()];
    for (index, &mode) in MODES.iter().enumerate() {
        throughputs[index] = workload.len() as f64 / (best_ms[index] / 1000.0).max(1e-9);
        table.metric(
            format!("{} throughput_milli", mode.label()),
            (throughputs[index] * 1000.0) as u64,
        );
        table.row([
            mode.label().to_string(),
            fmt3(throughputs[index] as f32),
            format!("{:.3}x", throughputs[index] / throughputs[0].max(1e-9)),
            samples[index].to_string(),
        ]);
    }

    table.note(format!(
        "{} inputs per pass, fastest of {TIMING_ROUNDS} interleaved rounds per mode; \
         disabled-instrumentation tolerance {:.0}%",
        workload.len(),
        OVERHEAD_TOLERANCE * 100.0,
    ));
    table.check(
        "verdicts bit-for-bit identical across instrumentation modes",
        parity,
    );
    table.check(
        "enabled registry records stage samples and the disabled registry \
         records none",
        samples[2] > 0 && samples[1] == 0 && samples[0] == 0,
    );
    table.timing_check(
        "attached-but-disabled throughput within 3% of uninstrumented",
        throughputs[1] >= throughputs[0] * (1.0 - OVERHEAD_TOLERANCE),
    );
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumentation_never_changes_verdicts_and_only_enabled_records() {
        let tables = run(BenchScale::Quick).unwrap();
        assert_eq!(tables.len(), 1);
        let rendered = tables[0].to_string();
        // Deterministic checks: parity and the enabled/disabled recording
        // split must hold on any machine.
        assert!(
            rendered.contains("across instrumentation modes: holds"),
            "instrumentation parity shape check failed:\n{rendered}"
        );
        assert!(
            rendered.contains("records none: holds"),
            "recording gate shape check failed:\n{rendered}"
        );
        // The 3% overhead bar is wall-clock and advisory in tests; the
        // release-built experiment binary is where the acceptance number is
        // read.
        if rendered.contains("of uninstrumented: below expectation") {
            eprintln!(
                "warning: disabled instrumentation above the overhead budget \
                 in this environment (timing-dependent):\n{rendered}"
            );
        }
    }
}
