//! Table II — sensitivity of BwCu accuracy, latency and energy to θ.
//!
//! The paper sweeps the cumulative threshold θ over {0.1, 0.5, 0.9} and reports
//! that accuracy peaks at θ = 0.5 (0.94) while latency and energy grow almost
//! proportionally with θ (4.7×/2.9× → 12.3×/7.7× → 25.7×/15.6×), because a larger
//! θ selects more important neurons and therefore sorts and accumulates more
//! partial sums.  θ = 0.5 is the operating point used for the rest of the paper.
//!
//! Shape to check: accuracy is highest at the middle θ (or at least not improved by
//! θ = 0.9), and latency/energy increase monotonically with θ.

use ptolemy_accel::HardwareConfig;
use ptolemy_core::variants;

use crate::{auc_summary, fmt3, fmt_factor, BenchResult, BenchScale, Table, Workbench};

/// The θ values of Table II.
pub const THETAS: [f32; 3] = [0.1, 0.5, 0.9];
/// Paper accuracy at each θ.
pub const PAPER_ACCURACY: [f32; 3] = [0.86, 0.94, 0.91];
/// Paper latency factor at each θ.
pub const PAPER_LATENCY: [f64; 3] = [4.7, 12.3, 25.7];
/// Paper energy factor at each θ.
pub const PAPER_ENERGY: [f64; 3] = [2.9, 7.7, 15.6];

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench, attack, compiler and hardware-model errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::alexnet_imagenet(scale)?;
    let attack_sets = wb.attack_sets()?;
    let benign = wb.benign_inputs(scale.attack_samples());
    let config = HardwareConfig::default();

    let mut table = Table::new("Table II — BwCu sensitivity to theta (AlexNet-class)").header([
        "theta",
        "accuracy (AUC)",
        "latency",
        "energy",
        "paper acc/lat/energy",
    ]);

    let mut measured = Vec::new();
    for (i, &theta) in THETAS.iter().enumerate() {
        let program = variants::bw_cu(&wb.network, theta)?;
        let class_paths = wb.profile(&program)?;
        let per_attack: Vec<(String, f32)> = attack_sets
            .iter()
            .map(|(name, adversarial)| {
                wb.detection_auc(&program, &class_paths, &benign, adversarial)
                    .map(|auc| (name.clone(), auc))
            })
            .collect::<BenchResult<_>>()?;
        let (mean, _, _) = auc_summary(&per_attack);
        let density = wb.measured_density(&program)?;
        let report = wb.variant_cost(&program, &config, density)?;
        measured.push((theta, mean, report.latency_factor(), report.energy_factor()));
        table.row([
            format!("{theta:.1}"),
            fmt3(mean),
            fmt_factor(report.latency_factor()),
            fmt_factor(report.energy_factor()),
            format!(
                "{:.2} / {:.1}x / {:.1}x",
                PAPER_ACCURACY[i], PAPER_LATENCY[i], PAPER_ENERGY[i]
            ),
        ]);
    }

    let latency_monotone = measured.windows(2).all(|w| w[1].2 >= w[0].2);
    let energy_monotone = measured.windows(2).all(|w| w[1].3 >= w[0].3);
    table.check("latency grows with theta", latency_monotone);
    table.check("energy grows with theta", energy_monotone);
    table.check(
        "theta = 0.9 does not beat theta = 0.5 in accuracy",
        measured[2].1 <= measured[1].1 + 0.02,
    );

    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn paper_rows_are_internally_consistent() {
        assert!(PAPER_ACCURACY[1] >= PAPER_ACCURACY[0]);
        assert!(PAPER_ACCURACY[1] >= PAPER_ACCURACY[2]);
        assert!(PAPER_LATENCY.windows(2).all(|w| w[1] > w[0]));
        assert!(PAPER_ENERGY.windows(2).all(|w| w[1] > w[0]));
    }
}
