//! Fig. 18a/18b — sensitivity to path-constructor provisioning.
//!
//! The path constructor's sort units and merge tree are the only new compute blocks
//! Ptolemy adds, so the paper sweeps both: a longer merge tree cuts BwCu latency
//! (31× → 12.3×) at essentially constant power, while adding sort units barely
//! helps latency (sorting is memory-bound) but inflates power because the sort
//! units dominate the path constructor's switching activity.
//!
//! Shape to check: latency is non-increasing in the merge-tree length with roughly
//! flat power, and power grows with the number of sort units while latency barely
//! improves.

use ptolemy_accel::HardwareConfig;
use ptolemy_core::variants;

use crate::{fmt_factor, BenchResult, BenchScale, Table, Workbench};

/// Merge-tree lengths of the Fig. 18a sweep.
pub const MERGE_LENGTHS: [usize; 4] = [4, 8, 16, 32];
/// Sort-unit counts of the Fig. 18b sweep.
pub const SORT_UNITS: [usize; 4] = [2, 4, 8, 16];

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench, compiler and hardware-model errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::alexnet_imagenet(scale)?;
    let program = variants::bw_cu(&wb.network, 0.5)?;
    let density = wb.measured_density(&program)?;

    let mut merge_table = Table::new("Fig. 18a — merge-tree length sweep (BwCu, AlexNet-class)")
        .header(["merge length", "latency", "power"]);
    let mut merge_latency = Vec::new();
    for &merge in &MERGE_LENGTHS {
        let config = HardwareConfig::default().with_path_constructor(2, merge);
        let report = wb.variant_cost(&program, &config, density)?;
        merge_latency.push(report.latency_factor());
        merge_table.row([
            merge.to_string(),
            fmt_factor(report.latency_factor()),
            fmt_factor(report.power_factor()),
        ]);
    }
    merge_table.note("paper: latency falls from 31x to 12.3x as the merge tree grows; power is flat (the merge tree is ~2 % of total power)".to_string());
    merge_table.check(
        "latency non-increasing in merge length",
        merge_latency.windows(2).all(|w| w[1] <= w[0] + 1e-9),
    );

    let mut sort_table = Table::new("Fig. 18b — sort-unit sweep (BwCu, AlexNet-class)").header([
        "sort units",
        "latency",
        "power",
    ]);
    let mut sort_latency = Vec::new();
    let mut sort_power = Vec::new();
    for &units in &SORT_UNITS {
        let config = HardwareConfig::default().with_path_constructor(units, 16);
        let report = wb.variant_cost(&program, &config, density)?;
        sort_latency.push(report.latency_factor());
        sort_power.push(report.power_factor());
        sort_table.row([
            units.to_string(),
            fmt_factor(report.latency_factor()),
            fmt_factor(report.power_factor()),
        ]);
    }
    sort_table.note("paper: more sort units barely reduce latency (memory-bound) but significantly increase power (sort units are 33.4 % of total power)".to_string());
    sort_table.check(
        "latency non-increasing in sort units",
        sort_latency.windows(2).all(|w| w[1] <= w[0] + 1e-9),
    );
    sort_table.check(
        "power grows with sort units",
        sort_power.last() >= sort_power.first(),
    );

    Ok(vec![merge_table, sort_table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_match_the_paper_design_points() {
        assert!(
            MERGE_LENGTHS.contains(&16),
            "default merge length must be swept"
        );
        assert!(
            SORT_UNITS.contains(&2),
            "default sort-unit count must be swept"
        );
        assert!(MERGE_LENGTHS.windows(2).all(|w| w[0] < w[1]));
        assert!(SORT_UNITS.windows(2).all(|w| w[0] < w[1]));
    }
}
