//! Beyond the paper — batch fusion: the pre-fusion per-input `par_map`
//! forward-trace loop vs one fused NCHW batched im2col/matmul trace
//! (`Network::forward_trace_batch`), across batch sizes.
//!
//! The fused trace stacks B inputs into one `[B, C, H, W]` tensor and runs
//! each layer's batched kernel once — the convolution weight rows stream over
//! `B·patches` im2col columns instead of being re-read per input, and every
//! per-layer allocation is amortised B-fold.  Each output element keeps the
//! per-input reduction order, so the fused trace is bit-for-bit identical to
//! the per-input path (checked here, not assumed).
//!
//! Shape to check: the fused trace beats the per-input loop from batch size
//! ~4 (the acceptance bar), and fused `detect_batch` verdicts are bit-for-bit
//! identical to single-input `detect`.

use ptolemy_attacks::Fgsm;
use ptolemy_core::{par_map, variants, DetectionEngine};
use ptolemy_obs::Clock;
use ptolemy_tensor::Tensor;

use crate::{fmt3, BenchResult, BenchScale, Table, Workbench};

/// Batch sizes compared (the acceptance bar reads the `>= 4` rows).
const BATCH_SIZES: [usize; 4] = [1, 2, 4, 8];

fn repetitions(scale: BenchScale) -> usize {
    match scale {
        BenchScale::Quick => 60,
        BenchScale::Full => 400,
    }
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench, engine and trace errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::lenet_small(scale)?;
    let network = &wb.network;
    let unique = wb.benign_inputs(8.max(wb.scale.attack_samples()));
    let reps = repetitions(scale);

    let mut table = Table::new(
        "Batch fusion — per-input par_map forward-trace loop vs one fused \
         NCHW im2col/matmul trace",
    )
    .header([
        "batch size",
        "per-input (ms/batch)",
        "fused (ms/batch)",
        "speedup",
        "bit parity",
    ]);

    let clock = Clock::monotonic();
    let mut fused_wins_at_4 = true;
    let mut parity_everywhere = true;
    // Fold every logit into a checksum so the optimiser cannot elide the
    // timed work.
    let mut checksum = 0.0f64;

    for &batch_size in &BATCH_SIZES {
        let inputs: Vec<Tensor> = (0..batch_size)
            .map(|i| unique[i % unique.len()].clone())
            .collect();

        // Warm both paths once (page in weights, fault in allocations).
        let warm = par_map(&inputs, |x| network.forward_trace(x));
        for trace in &warm {
            checksum += f64::from(trace.as_ref().map(|t| t.logits().sum()).unwrap_or(0.0));
        }
        checksum += f64::from(network.forward_trace_batch(&inputs)?.logits(0)?.sum());

        // The pre-fusion detect_batch inner loop: one independent trace per
        // input, fanned out over scoped threads.
        let start_ns = clock.now_ns();
        for _ in 0..reps {
            let traces = par_map(&inputs, |x| network.forward_trace(x));
            for trace in traces {
                checksum += f64::from(trace?.logits().sum());
            }
        }
        let per_input_ms = clock.now_ns().saturating_sub(start_ns) as f64 / 1e6 / reps as f64;

        // The fused path: one stacked trace for the whole batch.
        let start_ns = clock.now_ns();
        for _ in 0..reps {
            let batch_trace = network.forward_trace_batch(&inputs)?;
            checksum += f64::from(batch_trace.logits(0)?.sum());
        }
        let fused_ms = clock.now_ns().saturating_sub(start_ns) as f64 / 1e6 / reps as f64;

        // Parity: every sliced layer activation matches the per-input trace
        // bit for bit.
        let batch_trace = network.forward_trace_batch(&inputs)?;
        let mut parity = true;
        for (b, input) in inputs.iter().enumerate() {
            let single = network.forward_trace(input)?;
            let sliced = batch_trace.trace(b)?;
            for layer in 0..single.num_layers() {
                let same = sliced
                    .output(layer)
                    .as_slice()
                    .iter()
                    .zip(single.output(layer).as_slice())
                    .all(|(f, s)| f.to_bits() == s.to_bits());
                parity &= same;
            }
        }
        parity_everywhere &= parity;

        let speedup = per_input_ms / fused_ms.max(1e-9);
        if batch_size >= 4 && speedup < 1.0 {
            fused_wins_at_4 = false;
        }
        table.metric(
            format!("per_input_b{batch_size}_us"),
            (per_input_ms * 1000.0) as u64,
        );
        table.metric(
            format!("fused_b{batch_size}_us"),
            (fused_ms * 1000.0) as u64,
        );
        table.row([
            batch_size.to_string(),
            fmt3(per_input_ms as f32),
            fmt3(fused_ms as f32),
            format!("{speedup:.3}x"),
            if parity { "bit-for-bit" } else { "DIVERGED" }.to_string(),
        ]);
    }

    // End-to-end: fused detect_batch equals per-input detect on a calibrated
    // engine (deterministic — this is the serving-facing guarantee).
    let program = variants::bw_cu(network, 0.5)?;
    let class_paths = wb.profile(&program)?;
    let adversarial = wb.adversarial_inputs(&Fgsm::new(0.25), unique.len())?;
    let engine = DetectionEngine::builder(wb.network.clone(), program, class_paths)
        .calibrate(&unique, &adversarial)
        .build()?;
    let verdicts = engine.detect_batch(&unique)?;
    let detect_parity = unique.iter().zip(&verdicts).all(|(input, batched)| {
        engine.detect(input).is_ok_and(|single| {
            single.score.to_bits() == batched.score.to_bits()
                && single.similarity.to_bits() == batched.similarity.to_bits()
                && single.predicted_class == batched.predicted_class
        })
    });
    parity_everywhere &= detect_parity;

    table.note(format!(
        "{reps} repetitions per cell; {} unique inputs; checksum {checksum:.3}",
        unique.len()
    ));
    table.check(
        "fused trace is bit-for-bit identical to the per-input path (traces \
         and detect_batch)",
        parity_everywhere,
    );
    table.timing_check(
        "fused trace beats the per-input par_map loop at batch size >= 4",
        fused_wins_at_4,
    );
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_trace_is_bit_identical_and_competitive() {
        let tables = run(BenchScale::Quick).unwrap();
        assert_eq!(tables.len(), 1);
        let rendered = tables[0].to_string();
        // Deterministic check: fusion must never change a single bit,
        // whatever the machine.
        assert!(
            rendered.contains("detect_batch): holds"),
            "bit parity shape check failed:\n{rendered}"
        );
        // The throughput comparison is wall-clock and can lose on a heavily
        // oversubscribed test runner (unoptimized profile, timeshared cores),
        // so in the test it is advisory; the release-built experiment binary
        // is where the acceptance number is read.
        if rendered.contains("size >= 4: below expectation") {
            eprintln!(
                "warning: fused trace slower than the per-input loop in this \
                 environment (timing-dependent):\n{rendered}"
            );
        }
    }
}
