//! Fig. 14 — detection accuracy of adaptive adversarial inputs vs distortion.
//!
//! The adaptive attack is unbounded, so following Carlini et al.'s guideline the
//! paper reports detection accuracy as a function of the distortion (MSE) the
//! attack introduced: every point ⟨x, y⟩ is the average detection accuracy over all
//! adaptive samples whose distortion is ≤ x.  The paper observes a weak downward
//! trend — more distortion makes attacks slightly harder to detect — with accuracy
//! staying in the 0.7–0.9 band because the absolute distortions are small.
//!
//! Shape to check: detection stays above chance in every distortion bucket and the
//! last (most distorted) bucket is not easier to detect than the first.

use ptolemy_attacks::{AdaptiveAttack, AdaptiveConfig, Attack};
use ptolemy_core::variants;
use ptolemy_forest::auc;

use crate::{fmt3, BenchResult, BenchScale, Table, Workbench};

/// Runs the experiment.
///
/// # Errors
///
/// Propagates workbench and attack errors.
pub fn run(scale: BenchScale) -> BenchResult<Vec<Table>> {
    let wb = Workbench::alexnet_imagenet(scale)?;
    let limit = (scale.attack_samples() / 2).max(8);
    let benign = wb.benign_inputs(limit);

    let program = variants::bw_cu(&wb.network, 0.5)?;
    let class_paths = wb.profile(&program)?;
    let engine = wb.engine(&program, &class_paths)?;

    // Generate adaptive examples (AT-3, the paper's default strength for this plot)
    // keeping their measured distortion.
    let attack = AdaptiveAttack::new(
        AdaptiveConfig {
            layers_considered: 3,
            step_size: 0.02,
            iterations: scale.attack_iterations(),
            num_targets: 3,
            seed: 0xD157,
        },
        wb.dataset.train().to_vec(),
    )?;
    let mut examples = Vec::new();
    for (input, label) in wb.benign_samples(limit) {
        if wb.network.predict(&input)? != label {
            continue;
        }
        examples.push(attack.perturb(&wb.network, &input, label)?);
    }
    if examples.is_empty() {
        return Err("adaptive attack produced no examples".into());
    }

    // Benign similarity scores (shared across buckets).
    let mut benign_scores = Vec::new();
    for input in &benign {
        let (_, s) = engine.path_similarity(input)?;
        benign_scores.push(1.0 - s);
    }
    // Adaptive example scores with their distortions.
    let mut scored: Vec<(f32, f32)> = Vec::new();
    for example in &examples {
        let (_, s) = engine.path_similarity(&example.input)?;
        scored.push((example.distortion_mse, 1.0 - s));
    }
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    let max_mse = scored.last().map(|(m, _)| *m).unwrap_or(0.0);
    let mean_mse = scored.iter().map(|(m, _)| *m).sum::<f32>() / scored.len() as f32;
    let success_rate = examples.iter().filter(|e| e.success).count() as f32 / examples.len() as f32;

    let mut table = Table::new("Fig. 14 — detection accuracy vs adaptive distortion (BwCu)")
        .header(["distortion <= (MSE)", "samples", "AUC"]);

    let buckets = 5usize.min(scored.len());
    let mut bucket_aucs = Vec::new();
    for b in 1..=buckets {
        let count = (scored.len() * b).div_ceil(buckets);
        let subset = &scored[..count];
        let threshold = subset.last().map(|(m, _)| *m).unwrap_or(0.0);
        let mut scores = benign_scores.clone();
        let mut labels = vec![false; benign_scores.len()];
        for (_, s) in subset {
            scores.push(*s);
            labels.push(true);
        }
        let bucket_auc = auc(&scores, &labels)?;
        bucket_aucs.push(bucket_auc);
        table.row([
            format!("{threshold:.4}"),
            subset.len().to_string(),
            fmt3(bucket_auc),
        ]);
    }

    table.note(format!(
        "attack validity — success rate {:.0}%, mean MSE {:.4}, max MSE {:.4} (paper: 100% success, mean 0.007, max 0.035)",
        success_rate * 100.0,
        mean_mse,
        max_mse
    ));
    table.check(
        "detection stays above chance in every bucket",
        bucket_aucs.iter().all(|a| *a > 0.5),
    );
    if let (Some(first), Some(last)) = (bucket_aucs.first(), bucket_aucs.last()) {
        table.note(format!(
            "bucket AUC trajectory: {} -> {}",
            fmt3(*first),
            fmt3(*last),
        ));
        table.check(
            "higher distortion does not make detection easier",
            last <= &(first + 0.1),
        );
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    #[test]
    fn bucket_arithmetic_covers_all_samples() {
        // The cumulative buckets must end with the full sample count.
        let n = 13usize;
        let buckets = 5usize;
        let last = (n * buckets).div_ceil(buckets);
        assert_eq!(last, n);
    }
}
