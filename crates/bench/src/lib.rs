//! # ptolemy-bench
//!
//! The benchmark harness that regenerates every table and figure of the Ptolemy
//! paper's evaluation (Sec. VII) on this reproduction's scaled-down substrate.
//!
//! The crate is organised as a library so that the per-experiment logic is testable
//! and reusable:
//!
//! * [`Workbench`] — a trained network + dataset pair ("AlexNet-class on
//!   synth-ImageNet", "ResNet18-class on synth-CIFAR-100", …) with helpers for
//!   profiling, attack generation, AUC computation and hardware-cost simulation;
//! * [`BenchScale`] — laptop-friendly `Quick` vs statistics-friendly `Full` sizing;
//! * [`experiments`] — one module per paper artifact (Fig. 5 … Fig. 18, Table II,
//!   Sec. VII-A/G/H and the Sec. III-B software-cost analysis), each returning a
//!   printable report;
//! * `src/bin/` — one thin binary per experiment plus `all_experiments`, which runs
//!   everything and prints the EXPERIMENTS.md-style summary.
//!
//! Absolute numbers differ from the paper (the substrate is a scaled-down simulator,
//! not the authors' 15 nm testbed); what the harnesses reproduce is the *shape* of
//! every result — who wins, by roughly what factor, and where the crossovers fall.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;
pub mod experiments;
mod scale;
mod table;
mod workbench;

pub use scale::BenchScale;
pub use table::{fmt3, fmt_factor, fmt_percent, Table};
pub use workbench::{auc_summary, standard_attacks, BenchResult, Workbench};

/// Shared `main` of the per-experiment binaries: looks the experiment up in
/// [`experiments::all`], runs it at the env-selected [`BenchScale`], prints
/// its tables, writes its `BENCH_<id>.json` perf report (see [`emit`]) and
/// exits non-zero on failure.
pub fn run_binary(id: &str) {
    let scale = BenchScale::from_env();
    let Some(experiment) = experiments::all().into_iter().find(|e| e.id == id) else {
        eprintln!("unknown experiment: {id}");
        std::process::exit(2);
    };
    match experiments::run_and_emit(&experiment, scale) {
        Ok((tables, report)) => {
            for table in tables {
                println!("{table}");
            }
            println!("perf report: {}", report.display());
        }
        Err(error) => {
            eprintln!("experiment {id} failed: {error}");
            std::process::exit(1);
        }
    }
}
