//! # ptolemy-bench
//!
//! The benchmark harness that regenerates every table and figure of the Ptolemy
//! paper's evaluation (Sec. VII) on this reproduction's scaled-down substrate.
//!
//! The crate is organised as a library so that the per-experiment logic is testable
//! and reusable:
//!
//! * [`Workbench`] — a trained network + dataset pair ("AlexNet-class on
//!   synth-ImageNet", "ResNet18-class on synth-CIFAR-100", …) with helpers for
//!   profiling, attack generation, AUC computation and hardware-cost simulation;
//! * [`BenchScale`] — laptop-friendly `Quick` vs statistics-friendly `Full` sizing;
//! * [`experiments`] — one module per paper artifact (Fig. 5 … Fig. 18, Table II,
//!   Sec. VII-A/G/H and the Sec. III-B software-cost analysis), each returning a
//!   printable report;
//! * `src/bin/` — one thin binary per experiment plus `all_experiments`, which runs
//!   everything and prints the EXPERIMENTS.md-style summary.
//!
//! Absolute numbers differ from the paper (the substrate is a scaled-down simulator,
//! not the authors' 15 nm testbed); what the harnesses reproduce is the *shape* of
//! every result — who wins, by roughly what factor, and where the crossovers fall.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod scale;
mod table;
mod workbench;

pub use scale::BenchScale;
pub use table::{fmt3, fmt_factor, fmt_percent, Table};
pub use workbench::{auc_summary, standard_attacks, BenchResult, Workbench};
