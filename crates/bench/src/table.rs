//! Minimal fixed-width text tables for the experiment harnesses.
//!
//! Every figure/table harness prints its results as a plain-text table with a
//! title, a header row and one row per configuration, plus optional
//! "paper: … / measured: …" comparison lines — the format EXPERIMENTS.md records.

use std::fmt;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            ..Table::default()
        }
    }

    /// Sets the header row.
    pub fn header<S: Into<String>>(mut self, columns: impl IntoIterator<Item = S>) -> Self {
        self.header = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Appends a free-form note printed under the table (used for the
    /// paper-vs-measured comparison lines).
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}  "));
            }
            writeln!(f, "{}", line.trim_end())
        };
        if !self.header.is_empty() {
            write_row(f, &self.header)?;
            let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
            writeln!(f, "{}", "-".repeat(rule))?;
        }
        for row in &self.rows {
            write_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "{note}")?;
        }
        Ok(())
    }
}

/// Formats a float with three decimals (AUC-style values).
pub fn fmt3(value: f32) -> String {
    format!("{value:.3}")
}

/// Formats a relative factor (`12.3x` style).
pub fn fmt_factor(value: f64) -> String {
    format!("{value:.2}x")
}

/// Formats a percentage with one decimal.
pub fn fmt_percent(value: f64) -> String {
    format!("{value:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_title_header_rows_and_notes() {
        let mut table = Table::new("Fig. X").header(["variant", "auc"]);
        table.row(["BwCu", "0.94"]);
        table.row(["FwAb", "0.91"]);
        table.note("paper: BwCu 0.95 / measured 0.94");
        let text = table.to_string();
        assert!(text.contains("== Fig. X =="));
        assert!(text.contains("variant"));
        assert!(text.contains("BwCu"));
        assert!(text.contains("paper: BwCu"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.9444), "0.944");
        assert_eq!(fmt_factor(12.302), "12.30x");
        assert_eq!(fmt_percent(5.25), "5.2%");
    }

    #[test]
    fn ragged_rows_do_not_panic() {
        let mut table = Table::new("ragged").header(["a"]);
        table.row(["1", "2", "3"]);
        assert!(table.to_string().contains('3'));
    }
}
