//! Minimal fixed-width text tables for the experiment harnesses.
//!
//! Every figure/table harness prints its results as a plain-text table with a
//! title, a header row and one row per configuration, plus optional
//! "paper: … / measured: …" comparison lines — the format EXPERIMENTS.md records.

use std::fmt;

/// A simple left-aligned text table.
///
/// Beyond the printable rows/notes, a table carries the machine-readable side
/// of an experiment: named integer [`Table::metric`]s, deterministic
/// [`Table::check`]s (gated exactly by the CI perf trajectory) and
/// wall-clock-dependent [`Table::timing_check`]s (recorded but advisory) —
/// the `emit` module renders all three into the experiment's
/// `BENCH_<id>.json`.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
    metrics: Vec<(String, u64)>,
    checks: Vec<(String, bool)>,
    advisory: Vec<(String, bool)>,
}

impl Table {
    /// Creates an empty table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            ..Table::default()
        }
    }

    /// Sets the header row.
    pub fn header<S: Into<String>>(mut self, columns: impl IntoIterator<Item = S>) -> Self {
        self.header = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Appends a free-form note printed under the table (used for the
    /// paper-vs-measured comparison lines).
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Records a named integer metric for the experiment's `BENCH_<id>.json`.
    /// Integer-only by design (the workspace JSON dialect): scale fractional
    /// quantities up front (`*_milli`, `*_us`) and name the unit in the key.
    pub fn metric(&mut self, name: impl Into<String>, value: u64) -> &mut Self {
        self.metrics.push((name.into(), value));
        self
    }

    /// Records a **deterministic** shape check: printed as a note and emitted
    /// as a parity flag the CI bench gate compares exactly.  Only checks
    /// whose outcome never depends on wall-clock timing belong here; use
    /// [`Table::timing_check`] for the rest.
    pub fn check(&mut self, label: impl Into<String>, ok: bool) -> &mut Self {
        let label = label.into();
        self.notes.push(format!(
            "shape check — {label}: {}",
            if ok { "holds" } else { "VIOLATED" }
        ));
        self.checks.push((label, ok));
        self
    }

    /// Records a **timing-dependent** shape check: printed as a note and
    /// emitted as an advisory flag — tracked in the perf trajectory but never
    /// gated, because wall-clock outcomes flip on oversubscribed runners.
    pub fn timing_check(&mut self, label: impl Into<String>, ok: bool) -> &mut Self {
        let label = label.into();
        self.notes.push(format!(
            "shape check (timing, advisory) — {label}: {}",
            if ok { "holds" } else { "below expectation" }
        ));
        self.advisory.push((label, ok));
        self
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The recorded metrics, in insertion order.
    pub fn metrics(&self) -> &[(String, u64)] {
        &self.metrics
    }

    /// The recorded deterministic checks, in insertion order.
    pub fn checks(&self) -> &[(String, bool)] {
        &self.checks
    }

    /// The recorded advisory (timing-dependent) checks, in insertion order.
    pub fn advisory_checks(&self) -> &[(String, bool)] {
        &self.advisory
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}  "));
            }
            writeln!(f, "{}", line.trim_end())
        };
        if !self.header.is_empty() {
            write_row(f, &self.header)?;
            let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
            writeln!(f, "{}", "-".repeat(rule))?;
        }
        for row in &self.rows {
            write_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "{note}")?;
        }
        Ok(())
    }
}

/// Formats a float with three decimals (AUC-style values).
pub fn fmt3(value: f32) -> String {
    format!("{value:.3}")
}

/// Formats a relative factor (`12.3x` style).
pub fn fmt_factor(value: f64) -> String {
    format!("{value:.2}x")
}

/// Formats a percentage with one decimal.
pub fn fmt_percent(value: f64) -> String {
    format!("{value:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_title_header_rows_and_notes() {
        let mut table = Table::new("Fig. X").header(["variant", "auc"]);
        table.row(["BwCu", "0.94"]);
        table.row(["FwAb", "0.91"]);
        table.note("paper: BwCu 0.95 / measured 0.94");
        let text = table.to_string();
        assert!(text.contains("== Fig. X =="));
        assert!(text.contains("variant"));
        assert!(text.contains("BwCu"));
        assert!(text.contains("paper: BwCu"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.9444), "0.944");
        assert_eq!(fmt_factor(12.302), "12.30x");
        assert_eq!(fmt_percent(5.25), "5.2%");
    }

    #[test]
    fn ragged_rows_do_not_panic() {
        let mut table = Table::new("ragged").header(["a"]);
        table.row(["1", "2", "3"]);
        assert!(table.to_string().contains('3'));
    }

    #[test]
    fn metrics_and_checks_are_recorded_and_rendered() {
        let mut table = Table::new("instrumented");
        table.metric("wall_us", 1234);
        table.check("fused parity", true);
        table.check("routing sums", false);
        table.timing_check("pipelined >= serial", false);
        assert_eq!(table.metrics(), &[("wall_us".to_string(), 1234)]);
        assert_eq!(
            table.checks(),
            &[
                ("fused parity".to_string(), true),
                ("routing sums".to_string(), false)
            ]
        );
        assert_eq!(
            table.advisory_checks(),
            &[("pipelined >= serial".to_string(), false)]
        );
        let text = table.to_string();
        assert!(text.contains("shape check — fused parity: holds"));
        assert!(text.contains("shape check — routing sums: VIOLATED"));
        assert!(text
            .contains("shape check (timing, advisory) — pipelined >= serial: below expectation"));
        assert_eq!(table.title(), "instrumented");
    }
}
