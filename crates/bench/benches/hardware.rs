//! Criterion benchmarks of the architecture toolchain itself: compiling a detection
//! program to the ISA + task schedule, and running the cycle/energy simulator over
//! the compiled program for the different algorithm variants.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ptolemy_accel::{HardwareConfig, Simulator};
use ptolemy_compiler::{Compiler, OptimizationFlags};
use ptolemy_core::variants;
use ptolemy_nn::zoo;
use ptolemy_tensor::Rng64;

fn bench_compiler(c: &mut Criterion) {
    let network = zoo::conv_net(10, &mut Rng64::new(7)).expect("network");
    let bwcu = variants::bw_cu(&network, 0.5).expect("program");
    let fwab = variants::fw_ab(&network, 0.1).expect("program");

    let mut group = c.benchmark_group("compiler");
    group.bench_function("compile_bwcu_optimised", |b| {
        let compiler = Compiler::default();
        b.iter(|| compiler.compile(&network, black_box(&bwcu)).unwrap())
    });
    group.bench_function("compile_fwab_unoptimised", |b| {
        let compiler = Compiler::new(OptimizationFlags::none());
        b.iter(|| compiler.compile(&network, black_box(&fwab)).unwrap())
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let network = zoo::conv_net(10, &mut Rng64::new(7)).expect("network");
    let sim = Simulator::new(HardwareConfig::default()).expect("simulator");

    let mut group = c.benchmark_group("simulator");
    for (name, program) in [
        ("bwcu", variants::bw_cu(&network, 0.5).unwrap()),
        ("fwab", variants::fw_ab(&network, 0.1).unwrap()),
    ] {
        let compiled = Compiler::default().compile(&network, &program).unwrap();
        group.bench_function(format!("simulate_{name}"), |b| {
            b.iter(|| sim.simulate(&network, black_box(&compiled), 0.05).unwrap())
        });
    }
    group.bench_function("inference_report", |b| {
        b.iter(|| sim.inference_report(black_box(&network)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_compiler, bench_simulator);
criterion_main!(benches);
