//! Criterion benchmarks of the end-to-end detection pipeline: plain inference vs
//! inference + path extraction + similarity + random-forest classification for each
//! algorithm variant, plus one attack-generation step.  This is the software-level
//! counterpart of the paper's Fig. 11 (the hardware-level numbers come from the
//! `fig11_latency_energy` harness).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ptolemy_attacks::{Attack, Fgsm};
use ptolemy_bench::{BenchScale, Workbench};
use ptolemy_core::variants;

fn bench_detection_variants(c: &mut Criterion) {
    let wb = Workbench::lenet_small(BenchScale::Quick).expect("workbench");
    let input = wb.dataset.test()[0].0.clone();

    let mut group = c.benchmark_group("detection");
    group.sample_size(20);

    group.bench_function("inference_only", |b| {
        b.iter(|| wb.network.forward(black_box(&input)).unwrap())
    });

    let phi = wb.calibrate_phi(false).expect("phi");
    let programs = vec![
        ("bwcu", variants::bw_cu(&wb.network, 0.5).unwrap()),
        ("bwab", variants::bw_ab(&wb.network, phi).unwrap()),
        ("fwab", variants::fw_ab(&wb.network, phi).unwrap()),
        ("hybrid", variants::hybrid(&wb.network, phi, 0.5).unwrap()),
    ];
    let batch: Vec<_> = wb
        .dataset
        .test()
        .iter()
        .map(|(x, _)| x.clone())
        .take(16)
        .collect();
    for (name, program) in programs {
        let class_paths = wb.profile(&program).expect("class paths");
        let engine = wb.engine(&program, &class_paths).expect("engine");
        group.bench_function(format!("detect_{name}"), |b| {
            b.iter(|| engine.path_similarity(black_box(&input)).unwrap())
        });
        group.bench_function(format!("detect_batch16_{name}"), |b| {
            b.iter(|| {
                for x in &batch {
                    black_box(engine.path_similarity(black_box(x)).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn bench_attack_step(c: &mut Criterion) {
    let wb = Workbench::lenet_small(BenchScale::Quick).expect("workbench");
    let (input, label) = wb.dataset.test()[0].clone();
    let attack = Fgsm::new(0.2);
    let mut group = c.benchmark_group("attack");
    group.sample_size(20);
    group.bench_function("fgsm_single_input", |b| {
        b.iter(|| {
            attack
                .perturb(&wb.network, black_box(&input), label)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_detection_variants, bench_attack_step);
criterion_main!(benches);
