//! Criterion micro-benchmarks of the detection kernels: path extraction, path
//! algebra (bitmask AND/OR/popcount), ISA encode/decode and random-forest
//! inference.  These are the operations the Ptolemy hardware accelerates, so their
//! software cost is what motivates the architecture.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ptolemy_bench::{BenchScale, Workbench};
use ptolemy_core::{variants, Profiler};
use ptolemy_forest::{ForestConfig, RandomForest};
use ptolemy_isa::{Instruction, Reg};

fn bench_extraction(c: &mut Criterion) {
    let wb = Workbench::lenet_small(BenchScale::Quick).expect("workbench");
    let input = wb.dataset.test()[0].0.clone();
    let bwcu = variants::bw_cu(&wb.network, 0.5).expect("program");
    let fwab = variants::fw_ab(&wb.network, 0.05).expect("program");

    let mut group = c.benchmark_group("extraction");
    group.sample_size(20);
    group.bench_function("backward_cumulative", |b| {
        let profiler = Profiler::new(bwcu.clone());
        b.iter(|| profiler.extract(&wb.network, black_box(&input)).unwrap())
    });
    group.bench_function("forward_absolute", |b| {
        let profiler = Profiler::new(fwab.clone());
        b.iter(|| profiler.extract(&wb.network, black_box(&input)).unwrap())
    });
    group.finish();
}

fn bench_path_ops(c: &mut Criterion) {
    let wb = Workbench::lenet_small(BenchScale::Quick).expect("workbench");
    let program = variants::bw_cu(&wb.network, 0.5).expect("program");
    let class_paths = wb.profile(&program).expect("class paths");
    let profiler = Profiler::new(program);
    let (_, path) = profiler
        .extract(&wb.network, &wb.dataset.test()[0].0)
        .expect("path");
    let canary = class_paths.class_path(0).expect("class path");

    let mut group = c.benchmark_group("path_ops");
    group.bench_function("similarity", |b| {
        b.iter(|| black_box(&path).similarity(black_box(canary)).unwrap())
    });
    group.bench_function("density", |b| b.iter(|| black_box(&path).density()));
    group.finish();
}

fn bench_isa(c: &mut Criterion) {
    let inst = Instruction::Sort {
        src: Reg::new(1).unwrap(),
        len: Reg::new(3).unwrap(),
        dst: Reg::new(6).unwrap(),
    };
    let word = inst.encode();
    let mut group = c.benchmark_group("isa");
    group.bench_function("encode", |b| b.iter(|| black_box(&inst).encode()));
    group.bench_function("decode", |b| {
        b.iter(|| Instruction::decode(black_box(word)).unwrap())
    });
    group.finish();
}

fn bench_forest(c: &mut Criterion) {
    let features: Vec<Vec<f32>> = (0..200)
        .map(|i| vec![if i % 2 == 0 { 0.9 } else { 0.2 } + (i as f32) * 1e-4])
        .collect();
    let labels: Vec<bool> = (0..200).map(|i| i % 2 == 1).collect();
    let forest = RandomForest::fit(&features, &labels, &ForestConfig::default()).unwrap();
    let mut group = c.benchmark_group("random_forest");
    group.bench_function("predict_proba_100_trees", |b| {
        b.iter(|| forest.predict_proba(black_box(&[0.42])).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_extraction,
    bench_path_ops,
    bench_isa,
    bench_forest
);
criterion_main!(benches);
