//! The paper's motivating scenario: an attacker perturbs a stop sign so that an
//! object-recognition DNN mis-classifies it (e.g. as a yield sign), and Ptolemy
//! flags the input as adversarial at inference time so the system can reject the
//! prediction instead of acting on it.
//!
//! ```text
//! cargo run --release --example traffic_stop_sign
//! ```

use ptolemy::attacks::{Attack, Bim};
use ptolemy::core::{variants, DetectionEngine, Profiler};
use ptolemy::data::{traffic_signs, TRAFFIC_CLASSES};
use ptolemy::nn::{zoo, TrainConfig, Trainer};
use ptolemy::tensor::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small "traffic sign" dataset: stop, yield, speed-limit and background.
    let dataset = traffic_signs(30, 10, 11)?;
    let mut rng = Rng64::new(11);
    let mut network = zoo::conv_net(dataset.num_classes(), &mut rng)?;
    let report = Trainer::new(TrainConfig {
        epochs: 40,
        batch_size: 8,
        learning_rate: 0.002,
        ..TrainConfig::default()
    })
    .fit(&mut network, dataset.train())?;
    println!(
        "sign classifier trained on {:?}: clean accuracy {:.2}",
        TRAFFIC_CLASSES, report.final_accuracy
    );

    // Offline: canary class paths with the FwAb algorithm (the low-overhead variant
    // an embedded deployment would choose).
    let program = variants::fw_ab(&network, 0.05)?;
    let class_paths = Profiler::new(program.clone()).profile(&network, dataset.train())?;

    // Bind the serving engine once, calibrating the classifier with BIM
    // adversarial samples of all classes.
    let attack = Bim::new(0.12, 0.02, 30);
    let benign: Vec<_> = dataset.test().iter().map(|(x, _)| x.clone()).collect();
    let adversarial: Vec<_> = dataset
        .test()
        .iter()
        .map(|(x, y)| attack.perturb(&network, x, *y).map(|e| e.input))
        .collect::<Result<Vec<_>, _>>()?;
    let engine = DetectionEngine::builder(network, program, class_paths)
        .calibrate(&benign, &adversarial)
        .build()?;

    // The attack scenario: take stop-sign test images, perturb them, and see what the
    // classifier and the detector say.
    let stop_class = 0usize;
    let mut attacked = 0usize;
    let mut fooled = 0usize;
    let mut caught = 0usize;
    for (input, label) in dataset.test().iter().filter(|(_, l)| *l == stop_class) {
        if engine.network().predict(input)? != *label {
            continue;
        }
        let example = attack.perturb(engine.network(), input, *label)?;
        attacked += 1;
        let verdict = engine.detect(&example.input)?;
        if example.success {
            fooled += 1;
            println!(
                "stop sign perturbed (MSE {:.4}) -> classified as '{}'; Ptolemy verdict: {}",
                example.distortion_mse,
                TRAFFIC_CLASSES[example.adversarial_class.min(TRAFFIC_CLASSES.len() - 1)],
                if verdict.is_adversary {
                    "ADVERSARIAL (rejected)"
                } else {
                    "benign (missed!)"
                },
            );
        }
        if verdict.is_adversary {
            caught += 1;
        }
    }
    println!(
        "\n{attacked} stop signs attacked, {fooled} fooled the classifier, {caught} flagged by Ptolemy"
    );

    // Benign stop signs should still pass; score them as one batch.
    let benign_stop: Vec<_> = dataset
        .test()
        .iter()
        .filter(|(_, l)| *l == stop_class)
        .map(|(x, _)| x.clone())
        .collect();
    let verdicts = engine.detect_batch(&benign_stop)?;
    let benign_pass = verdicts.iter().filter(|v| !v.is_adversary).count();
    println!(
        "{benign_pass}/{} unperturbed stop signs pass the detector",
        benign_stop.len()
    );
    Ok(())
}
