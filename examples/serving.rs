//! Serving demo: build a cheap FwAb screening engine and an expensive BwCu
//! escalation engine, split the escalation canary set across **shard**
//! engines, start a multi-worker `Server` with sharded tiered routing,
//! cross-batch tier-2 pipelining and the persistent path-prefix result cache,
//! feed it a mixed benign/adversarial stream with duplicates, and print the
//! `ServeStats` snapshot (tier + per-shard counts, pipelined/serial batches,
//! cache hit rate and persistence counters, queue-to-result latency
//! percentiles) plus the full observability snapshot — per-stage latency
//! histograms and counters from the attached `ptolemy_obs::Registry`,
//! rendered as JSON by `Server::metrics_json`.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use std::sync::Arc;
use std::time::Duration;

use ptolemy::prelude::*;
use ptolemy::tensor::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Victim model on a 10-class CIFAR-style synthetic dataset.
    let dataset = SyntheticDataset::synth_cifar10(30, 10, 7)?;
    let mut rng = Rng64::new(7);
    let mut network = zoo::lenet(3, dataset.num_classes(), &mut rng)?;
    let report = Trainer::new(TrainConfig {
        epochs: 40,
        batch_size: 8,
        learning_rate: 0.002,
        ..TrainConfig::default()
    })
    .fit(&mut network, dataset.train())?;
    println!(
        "victim trained: clean accuracy {:.2}",
        report.final_accuracy
    );
    let network = Arc::new(network);

    // 2. Offline phase, twice: profile class paths for the cheap screening
    //    program (forward extraction, absolute threshold — overlappable with
    //    inference) and for the expensive escalation program (backward
    //    extraction, cumulative threshold — the most accurate variant).
    let screen_program = variants::fw_ab(&network, 0.05)?;
    let expensive_program = variants::bw_cu(&network, 0.5)?;
    let screen_paths = Profiler::new(screen_program.clone()).profile(&network, dataset.train())?;
    let expensive_paths =
        Profiler::new(expensive_program.clone()).profile(&network, dataset.train())?;

    // 3. Calibration sets: benign test inputs and FGSM adversarial samples.
    let attack = Fgsm::new(0.25);
    let benign: Vec<_> = dataset.test().iter().map(|(x, _)| x.clone()).collect();
    let adversarial: Vec<_> = dataset
        .test()
        .iter()
        .map(|(x, y)| attack.perturb(&network, x, *y).map(|e| e.input))
        .collect::<Result<Vec<_>, _>>()?;
    let half = benign.len() / 2;

    // 4. Bind both tier engines once (fingerprints validated here).  The
    //    screen engine is shared (Arc) because step 10 restarts a second server
    //    around it to demonstrate cache persistence.
    let screen = Arc::new(
        DetectionEngine::builder(network.clone(), screen_program, screen_paths)
            .calibrate(&benign[..half], &adversarial[..half])
            .build()?,
    );
    let expensive = DetectionEngine::builder(network.clone(), expensive_program, expensive_paths)
        .calibrate(&benign[..half], &adversarial[..half])
        .build()?;
    println!(
        "tier-1 screen:  {}\ntier-2 escalate: {}",
        screen.fingerprint(),
        expensive.fingerprint()
    );

    // 5. Shard the escalation tier: the 10-class canary set splits across 3
    //    shard engines, each owning a third of the classes' canary memory.
    //    Shards reuse the complete engine's fitted forest and threshold —
    //    bit-for-bit parity with the unsharded engine requires the identical
    //    classifier — and serve the SAME network instance as the screen tier
    //    (sharded routing relies on both tiers predicting the same class).
    let shards = expensive
        .class_paths()
        .shard(3)?
        .into_iter()
        .map(|shard_paths| {
            Ok(Arc::new(
                DetectionEngine::builder(network.clone(), expensive.program().clone(), shard_paths)
                    .forest(expensive.forest().expect("calibrated").clone())
                    .threshold(expensive.threshold())
                    .build()?,
            ))
        })
        .collect::<Result<Vec<_>, ptolemy::core::CoreError>>()?;
    for (index, shard) in shards.iter().enumerate() {
        println!(
            "  shard {index}: owns classes {:?}",
            shard.class_paths().shard_classes().unwrap_or(&[])
        );
    }

    // 6. Start the serving runtime: 4 workers, adaptive batching, scores in
    //    [0.35, 0.65] escalate to the shard owning the screened class (tier-2
    //    slivers pipelined against the next batch's screening — the default),
    //    near-duplicate results served from the path-prefix cache, the cache
    //    persisted across restarts, and every stage timed into a metrics
    //    registry.
    let registry = Arc::new(Registry::new("example.serving"));
    let cache_path = std::env::temp_dir().join("ptolemy-serving-example-cache.json");
    let _ = std::fs::remove_file(&cache_path); // fresh demo run
    let cache_config = CacheConfig {
        persist_path: Some(cache_path.clone()),
        ..CacheConfig::default()
    };
    let start_server = |screen: &Arc<DetectionEngine>,
                        shards: &[Arc<DetectionEngine>]|
     -> Result<Server, ServeError> {
        Server::builder(screen.clone())
            .escalate_sharded(shards.to_vec(), 0.35, 0.65)
            .workers(4)
            .queue_capacity(512)
            .batch_policy(BatchPolicy {
                max_batch: 16,
                latency_budget: Duration::from_millis(2),
                ..BatchPolicy::default()
            })
            .cache(cache_config.clone())
            .instrument(registry.clone())
            .start()
    };
    let server = start_server(&screen, &shards)?;

    // 7. A mixed stream with duplicates: every held-out input is submitted
    //    three times (interleaved), the way retried or replayed traffic repeats
    //    in production.
    let mut stream = Vec::new();
    for _ in 0..3 {
        for (b, a) in benign[half..].iter().zip(&adversarial[half..]) {
            stream.push((b.clone(), false));
            stream.push((a.clone(), true));
        }
    }
    let tickets: Vec<(Ticket, bool)> = stream
        .into_iter()
        .map(|(input, is_adv)| Ok((server.submit(input)?, is_adv)))
        .collect::<Result<_, ServeError>>()?;

    let mut correct = 0usize;
    let mut total = 0usize;
    for (ticket, expected) in tickets {
        let served = ticket.wait()?;
        if served.detection.is_adversary == expected {
            correct += 1;
        }
        total += 1;
    }
    println!(
        "stream served: detection accuracy {:.2} ({correct}/{total})",
        correct as f32 / total as f32
    );

    // 8. The observability snapshot: per-stage latency histograms (queue wait,
    //    batch forming, screen inference, escalation, cache probes) and
    //    counters, rendered as the same JSON the periodic snapshot thread and
    //    the BENCH_*.json trajectory use.
    println!("\nmetrics snapshot ({})", registry.name());
    println!("{}", server.metrics_json().to_json());

    // 9. The counters the serving layer exposes.
    let stats = server.shutdown();
    println!("\nServeStats");
    println!("  submitted           {}", stats.submitted);
    println!("  completed           {}", stats.completed);
    println!("  tier-1 (screen)     {}", stats.screen_served);
    println!(
        "  tier-2 (escalated)  {} across shards {:?}",
        stats.escalated, stats.shard_escalations
    );
    println!(
        "  tier-2 pipelining   {} pipelined / {} serial batches",
        stats.pipelined_batches, stats.serial_batches
    );
    println!(
        "  cache hits/misses   {}/{} (hit rate {:.2})",
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hit_rate()
    );
    println!(
        "  cache persistence   {} loaded, {} rejected, {} persisted to {}",
        stats.cache_entries_loaded,
        stats.cache_load_rejected,
        stats.cache_entries_persisted,
        cache_path.display()
    );
    println!(
        "  batches             {} (mean {:.1}, max {})",
        stats.batches, stats.mean_batch, stats.max_batch
    );
    println!(
        "  queue-to-result     p50 {:.2} ms / p99 {:.2} ms",
        stats.p50_latency_ms, stats.p99_latency_ms
    );

    if stats.escalated == 0 {
        println!("note: no input landed in the uncertainty band on this run");
    }

    // 10. Restart: a second server over the same engines reloads the persisted
    //    cache (the fingerprint in the file matches), so replayed traffic hits
    //    immediately — the point of persistence.
    let server = start_server(&screen, &shards)?;
    let restarted = server.stats();
    let replays: Vec<Ticket> = benign[half..]
        .iter()
        .map(|input| server.submit(input.clone()))
        .collect::<Result<_, ServeError>>()?;
    for ticket in replays {
        ticket.wait()?;
    }
    let final_stats = server.shutdown();
    println!("\nAfter restart (same engines, same cache file)");
    println!(
        "  cache persistence   {} loaded, {} rejected",
        restarted.cache_entries_loaded, restarted.cache_load_rejected
    );
    println!(
        "  replayed held-out benign inputs: {} hits / {} misses",
        final_stats.cache_hits, final_stats.cache_misses
    );
    let _ = std::fs::remove_file(&cache_path); // keep the demo tidy
    Ok(())
}
