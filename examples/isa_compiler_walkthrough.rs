//! A walkthrough of the architecture side of Ptolemy (paper Sec. IV–V): express a
//! detection program, compile it to the custom 24-bit ISA and the static task
//! schedule, inspect the generated assembly and the effect of each compiler
//! optimisation, and execute the schedule on the cycle/energy model.
//!
//! ```text
//! cargo run --release --example isa_compiler_walkthrough
//! ```

use ptolemy::accel::{area_report, dram_space_report, HardwareConfig, Simulator};
use ptolemy::compiler::{Compiler, OptimizationFlags};
use ptolemy::core::{variants, DetectionProgram, Direction, ThresholdKind};
use ptolemy::isa::assemble;
use ptolemy::nn::zoo;
use ptolemy::tensor::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = zoo::conv_net(10, &mut Rng64::new(3))?;
    let num_weight_layers = network.weight_layer_indices().len();

    // 1. The programming interface (paper Fig. 6): per-layer extraction specs.  This
    //    program extracts only the last three layers, the last one with a cumulative
    //    threshold and the other two with absolute thresholds.
    let program = DetectionProgram::builder(Direction::Forward, num_weight_layers)
        .all_layers(ThresholdKind::Absolute { phi: 0.1 })
        .layer(
            num_weight_layers - 1,
            ThresholdKind::Cumulative { theta: 0.5 },
        )?
        .disable_before(num_weight_layers - 3)
        .build()?;
    println!(
        "detection program: direction {:?}, {} of {} layers extracted\n",
        program.direction(),
        program.enabled_layers().len(),
        num_weight_layers
    );

    // 2. Compile to the 24-bit CISC ISA (paper Table I) and show the assembly.
    let compiled = Compiler::default().compile(&network, &program)?;
    println!(
        "compiled program: {} static instructions, {} bytes (paper: largest program ~30 instructions, <100 bytes)",
        compiled.isa.instructions.len(),
        compiled.isa.size_bytes()
    );
    println!("--- generated assembly ---");
    print!("{}", compiled.isa.disassemble());
    println!("--------------------------\n");

    // 3. The assembler also accepts the paper's Listing-1 style textual syntax.
    let listing = "\
.set rfsize 0x200
mov r3, rfsize
findrf r4, r1
sort r1, r3, r6
acum r6, r1, r5";
    let assembled = assemble(listing)?;
    println!(
        "assembled Listing-1 fragment: {} instructions, round-trips to:\n{}",
        assembled.instructions.len(),
        assembled.disassemble()
    );

    // 4. Compiler optimisations: compare the schedule with and without layer-level
    //    pipelining (Fig. 7a) on the hardware model.
    let simulator = Simulator::new(HardwareConfig::default())?;
    let density = 0.05;
    let pipelined = simulator.simulate(&network, &compiled, density)?;
    let serial_compiled = Compiler::new(OptimizationFlags {
        layer_pipelining: false,
        ..OptimizationFlags::default()
    })
    .compile(&network, &program)?;
    let serial = simulator.simulate(&network, &serial_compiled, density)?;
    println!(
        "latency with layer-level pipelining: {:.3}x inference; without: {:.3}x",
        pipelined.latency_factor(),
        serial.latency_factor()
    );

    // 5. The compute-for-memory trade-off (csps recompute) on a cumulative program.
    let bwcu = variants::bw_cu(&network, 0.5)?;
    let recompute = Compiler::default().compile(&network, &bwcu)?;
    let store_all = Compiler::new(OptimizationFlags {
        recompute_partial_sums: false,
        ..OptimizationFlags::default()
    })
    .compile(&network, &bwcu)?;
    let config = HardwareConfig::default();
    println!(
        "BwCu extra DRAM space: {:.2} MB with recompute vs {:.2} MB storing every partial sum",
        dram_space_report(&network, &recompute, &config, density)?.total_mb(),
        dram_space_report(&network, &store_all, &config, density)?.total_mb(),
    );

    // 6. Hardware cost of the Ptolemy extensions (paper Sec. VII-A).
    let area = area_report(&config)?;
    println!(
        "area overhead: {:.1}% ({:.3} mm^2 added to a {:.2} mm^2 accelerator)",
        area.overhead_percent(),
        area.added_mm2(),
        area.baseline_mm2
    );

    // 7. The same hardware model doubles as a serving backend: bind the program
    //    into a `DetectionEngine` with an `AccelBackend` and price a whole batch
    //    through the serving call path (the compiler runs once, at bind time).
    let input_shape = network.input_shape().to_vec();
    let input_len: usize = input_shape.iter().product();
    let samples: Vec<_> = (0..16)
        .map(|i| {
            let mut rng = Rng64::new(100 + i);
            let data: Vec<f32> = (0..input_len).map(|_| rng.normal()).collect();
            ptolemy::tensor::Tensor::from_vec(data, &input_shape)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let labelled: Vec<_> = samples
        .iter()
        .map(|x| network.predict(x).map(|label| (x.clone(), label)))
        .collect::<Result<Vec<_>, _>>()?;
    let class_paths = ptolemy::core::Profiler::new(program.clone()).profile(&network, &labelled)?;
    let engine = ptolemy::core::DetectionEngine::builder(network, program, class_paths)
        .backend(Box::new(ptolemy::accel::AccelBackend::new(config)))
        .build()?;
    let estimate = engine.estimate_batch(64, density)?;
    println!(
        "serving a 64-input batch on the '{}' backend: {:.3} ms, {:.1} uJ modelled",
        engine.backend_name(),
        estimate.latency_ms.unwrap_or(0.0),
        estimate.energy_pj.unwrap_or(0.0) / 1e6,
    );
    Ok(())
}
