//! The accuracy/efficiency trade-off space (paper Sec. III-C and Fig. 10/11): build
//! the four algorithm variants — BwCu, BwAb, FwAb and Hybrid — for one victim
//! network, measure each variant's detection AUC against FGSM/BIM samples, compile
//! it with the Ptolemy compiler and price it on the hardware model.
//!
//! ```text
//! cargo run --release --example accuracy_efficiency_tradeoff
//! ```

use ptolemy::accel::{HardwareConfig, Simulator};
use ptolemy::attacks::{Attack, Bim, Fgsm};
use ptolemy::compiler::Compiler;
use ptolemy::core::{variants, Detector, Profiler};
use ptolemy::data::SyntheticDataset;
use ptolemy::forest::auc;
use ptolemy::nn::{zoo, TrainConfig, Trainer};
use ptolemy::tensor::{Rng64, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Victim: the AlexNet-class model on a 10-class ImageNet-style dataset.
    let dataset = SyntheticDataset::synth_imagenet_subset(10, 25, 8, 42)?;
    let mut network = zoo::conv_net(dataset.num_classes(), &mut Rng64::new(42))?;
    let report = Trainer::new(TrainConfig {
        epochs: 40,
        batch_size: 8,
        learning_rate: 0.002,
        ..TrainConfig::default()
    })
    .fit(&mut network, dataset.train())?;
    println!("victim clean accuracy: {:.2}\n", report.final_accuracy);

    // Adversarial evaluation set: FGSM + BIM on correctly classified test inputs.
    let attacks: Vec<Box<dyn Attack>> = vec![Box::new(Fgsm::new(0.12)), Box::new(Bim::new(0.12, 0.02, 25))];
    let benign: Vec<Tensor> = dataset.test().iter().map(|(x, _)| x.clone()).collect();
    let mut adversarial: Vec<Tensor> = Vec::new();
    for attack in &attacks {
        for (input, label) in dataset.test() {
            if network.predict(input)? != *label {
                continue;
            }
            adversarial.push(attack.perturb(&network, input, *label)?.input);
        }
    }

    let simulator = Simulator::new(HardwareConfig::default())?;
    let compiler = Compiler::default();

    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>14}",
        "variant", "AUC", "latency", "energy", "extra DRAM(KB)"
    );
    let programs = vec![
        ("BwCu", variants::bw_cu(&network, 0.5)?),
        ("BwAb", variants::bw_ab(&network, 0.1)?),
        ("FwAb", variants::fw_ab(&network, 0.1)?),
        ("Hybrid", variants::hybrid(&network, 0.1, 0.5)?),
    ];
    for (name, program) in programs {
        // Accuracy: path similarity as the detection score.
        let class_paths = Profiler::new(program.clone()).profile(&network, dataset.train())?;
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        let mut density = 0.0f32;
        for input in &benign {
            let (_, s) = Detector::path_similarity(&network, &program, &class_paths, input)?;
            scores.push(1.0 - s);
            labels.push(false);
        }
        for input in &adversarial {
            let (_, s) = Detector::path_similarity(&network, &program, &class_paths, input)?;
            scores.push(1.0 - s);
            labels.push(true);
        }
        {
            let profiler = Profiler::new(program.clone());
            let (_, path) = profiler.extract(&network, &benign[0])?;
            density = density.max(path.density());
        }
        let variant_auc = auc(&scores, &labels)?;

        // Cost: compile and simulate on the default 20x20 accelerator.
        let compiled = compiler.compile(&network, &program)?;
        let cost = simulator.simulate(&network, &compiled, density)?;
        println!(
            "{:<8} {:>8.3} {:>11.2}x {:>11.2}x {:>14.1}",
            name,
            variant_auc,
            cost.latency_factor(),
            cost.energy_factor(),
            cost.extra_dram_space_bytes as f64 / 1024.0,
        );
    }
    println!("\n(The paper's Fig. 10/11 shape: BwCu is the most accurate and most expensive, FwAb hides almost all latency, Hybrid sits in between.)");
    Ok(())
}
