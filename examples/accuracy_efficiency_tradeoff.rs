//! The accuracy/efficiency trade-off space (paper Sec. III-C and Fig. 10/11): build
//! the four algorithm variants — BwCu, BwAb, FwAb and Hybrid — for one victim
//! network, bind each into a `DetectionEngine` backed by the hardware model, and
//! read detection AUC and modelled latency/energy off the same serving call path.
//!
//! ```text
//! cargo run --release --example accuracy_efficiency_tradeoff
//! ```

use std::sync::Arc;

use ptolemy::accel::{AccelBackend, HardwareConfig};
use ptolemy::attacks::{Attack, Bim, Fgsm};
use ptolemy::core::{variants, DetectionEngine, Profiler};
use ptolemy::data::SyntheticDataset;
use ptolemy::forest::auc;
use ptolemy::nn::{zoo, TrainConfig, Trainer};
use ptolemy::tensor::{Rng64, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Victim: the AlexNet-class model on a 10-class ImageNet-style dataset.
    let dataset = SyntheticDataset::synth_imagenet_subset(10, 25, 8, 42)?;
    let mut network = zoo::conv_net(dataset.num_classes(), &mut Rng64::new(42))?;
    let report = Trainer::new(TrainConfig {
        epochs: 40,
        batch_size: 8,
        learning_rate: 0.002,
        ..TrainConfig::default()
    })
    .fit(&mut network, dataset.train())?;
    println!("victim clean accuracy: {:.2}\n", report.final_accuracy);
    // Engines share the trained network instead of copying it.
    let network = Arc::new(network);

    // Adversarial evaluation set: FGSM + BIM on correctly classified test inputs.
    let attacks: Vec<Box<dyn Attack>> = vec![
        Box::new(Fgsm::new(0.12)),
        Box::new(Bim::new(0.12, 0.02, 25)),
    ];
    let benign: Vec<Tensor> = dataset.test().iter().map(|(x, _)| x.clone()).collect();
    let mut adversarial: Vec<Tensor> = Vec::new();
    for attack in &attacks {
        for (input, label) in dataset.test() {
            if network.predict(input)? != *label {
                continue;
            }
            adversarial.push(attack.perturb(&network, input, *label)?.input);
        }
    }

    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>16}",
        "variant", "AUC", "latency", "energy", "batch latency(ms)"
    );
    let programs = vec![
        ("BwCu", variants::bw_cu(&network, 0.5)?),
        ("BwAb", variants::bw_ab(&network, 0.1)?),
        ("FwAb", variants::fw_ab(&network, 0.1)?),
        ("Hybrid", variants::hybrid(&network, 0.1, 0.5)?),
    ];
    for (name, program) in programs {
        // One engine per variant: profiled class paths, calibrated classifier,
        // and the hardware model as the serving backend.
        let class_paths = Profiler::new(program.clone()).profile(&network, dataset.train())?;
        let engine = DetectionEngine::builder(network.clone(), program, class_paths)
            .backend(Box::new(AccelBackend::new(HardwareConfig::default())))
            .calibrate(&benign, &adversarial)
            .build()?;

        // Accuracy: raw path similarity as the detection score.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for (inputs, label) in [(&benign, false), (&adversarial, true)] {
            for input in inputs.iter() {
                let (_, s) = engine.path_similarity(input)?;
                scores.push(1.0 - s);
                labels.push(label);
            }
        }
        let variant_auc = auc(&scores, &labels)?;

        // Cost: serve the benign set as one batch; the backend prices it on the
        // default 20x20 accelerator using the batch's measured path density.
        let (_, estimate) = engine.detect_batch_with_estimate(&benign)?;
        println!(
            "{:<8} {:>8.3} {:>11.2}x {:>11.2}x {:>16.3}",
            name,
            variant_auc,
            estimate.latency_factor.unwrap_or(0.0),
            estimate.energy_factor.unwrap_or(0.0),
            estimate.latency_ms.unwrap_or(0.0),
        );
    }
    println!("\n(The paper's Fig. 10/11 shape: BwCu is the most accurate and most expensive, FwAb hides almost all latency, Hybrid sits in between.)");
    Ok(())
}
