//! Quickstart: train a small victim network on synthetic data, profile its canary
//! class paths offline, bind a `DetectionEngine` once, and detect FGSM adversarial
//! samples in batches at inference time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ptolemy::prelude::*;
use ptolemy::tensor::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data and victim model: a 10-class CIFAR-style synthetic dataset and a small
    //    convolutional network.
    let dataset = SyntheticDataset::synth_cifar10(30, 10, 7)?;
    let mut rng = Rng64::new(7);
    let mut network = ptolemy::nn::zoo::lenet(3, dataset.num_classes(), &mut rng)?;
    let report = Trainer::new(TrainConfig {
        epochs: 40,
        batch_size: 8,
        learning_rate: 0.002,
        ..TrainConfig::default()
    })
    .fit(&mut network, dataset.train())?;
    println!(
        "victim trained: clean accuracy {:.2}",
        report.final_accuracy
    );

    // 2. Offline phase (Fig. 4 left): profile the training set into per-class canary
    //    paths using the BwCu algorithm (backward extraction, cumulative threshold).
    let program = variants::bw_cu(&network, 0.5)?;
    let class_paths = Profiler::new(program.clone()).profile(&network, dataset.train())?;
    println!(
        "profiled {} canary class paths ({} bits each)",
        class_paths.num_classes(),
        class_paths.class_path(0)?.path().total_bits()
    );

    // 3. Build the serving engine: the program/class-path fingerprint is validated
    //    once here, the random-forest classifier is calibrated from benign test
    //    inputs and FGSM adversarial samples, and the decision threshold is an
    //    explicit knob instead of a hard-coded 0.5.
    let attack = Fgsm::new(0.25);
    let benign: Vec<_> = dataset.test().iter().map(|(x, _)| x.clone()).collect();
    let adversarial: Vec<_> = dataset
        .test()
        .iter()
        .map(|(x, y)| attack.perturb(&network, x, *y).map(|e| e.input))
        .collect::<Result<Vec<_>, _>>()?;
    let engine = DetectionEngine::builder(network, program, class_paths)
        .threshold(0.5)
        .calibrate(
            &benign[..benign.len() / 2],
            &adversarial[..adversarial.len() / 2],
        )
        .build()?;

    // 4. Online phase (Fig. 4 right): detect held-out benign and adversarial inputs
    //    in one batch each (traces fan out over scoped threads).
    let mut correct = 0usize;
    let mut total = 0usize;
    for (inputs, expected) in [
        (&benign[benign.len() / 2..], false),
        (&adversarial[adversarial.len() / 2..], true),
    ] {
        for verdict in engine.detect_batch(inputs)? {
            if verdict.is_adversary == expected {
                correct += 1;
            }
            total += 1;
        }
    }
    println!(
        "held-out detection accuracy: {:.2} ({correct}/{total})",
        correct as f32 / total as f32
    );

    // 5. AUC over the same held-out split, the metric the paper reports; the
    //    streaming API scores the inputs lazily.
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for (inputs, is_adv) in [
        (&benign[benign.len() / 2..], false),
        (&adversarial[adversarial.len() / 2..], true),
    ] {
        for score in engine.score_stream(inputs.iter().cloned()) {
            scores.push(score?);
            labels.push(is_adv);
        }
    }
    println!("held-out detection AUC: {:.3}", auc(&scores, &labels)?);
    Ok(())
}
