//! # Ptolemy (reproduction) — umbrella crate
//!
//! This crate re-exports the member crates of the Ptolemy reproduction workspace so
//! that the runnable examples under `examples/` and the cross-crate integration
//! tests under `tests/` have a single import root.
//!
//! The interesting code lives in the member crates:
//!
//! * [`tensor`] — NCHW tensors, matmul, im2col ([`ptolemy_tensor`]).
//! * [`nn`] — DNN inference/training with partial-sum visibility ([`ptolemy_nn`]).
//! * [`data`] — synthetic class-structured datasets ([`ptolemy_data`]).
//! * [`attacks`] — FGSM/BIM/PGD/JSMA/DeepFool/CW-L2 and the adaptive attack
//!   ([`ptolemy_attacks`]).
//! * [`forest`] — random forest + AUC ([`ptolemy_forest`]).
//! * [`core`] — the Ptolemy detection framework and its serving engine
//!   ([`ptolemy_core`]).
//! * [`isa`], [`compiler`], [`accel`] — the ISA, compiler and hardware model;
//!   `accel` also provides the [`accel::AccelBackend`] serving backend.
//! * [`serve`] — the multi-worker serving runtime over one or two engines
//!   ([`ptolemy_serve`]).
//! * [`baselines`] — EP, CDRP and DeepFense baselines.
//!
//! # Quick start
//!
//! Offline, profile canary class paths; then bind everything into a
//! [`DetectionEngine`](core::DetectionEngine) once and serve traffic through it —
//! per input, per batch, or as a stream:
//!
//! ```no_run
//! use ptolemy::prelude::*;
//! use ptolemy::tensor::Rng64;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a small synthetic dataset and train a network on it.
//! let dataset = SyntheticDataset::synth_cifar10(20, 5, 7)?;
//! let mut rng = Rng64::new(0);
//! let mut network = zoo::mlp_net(dataset.input_shape(), dataset.num_classes(), &mut rng)?;
//! Trainer::new(TrainConfig::default()).fit(&mut network, dataset.train())?;
//!
//! // Offline: profile canary class paths with the FwAb algorithm.
//! let program = variants::fw_ab(&network, 0.05)?;
//! let class_paths = Profiler::new(program.clone()).profile(&network, dataset.train())?;
//!
//! // Calibration sets: benign test inputs and FGSM adversarial samples.
//! let benign: Vec<_> = dataset.test().iter().map(|(x, _)| x.clone()).collect();
//! let adversarial: Vec<_> = dataset
//!     .test()
//!     .iter()
//!     .map(|(x, y)| Fgsm::new(0.3).perturb(&network, x, *y).map(|e| e.input))
//!     .collect::<Result<Vec<_>, _>>()?;
//!
//! // Bind the engine once: the program/class-path fingerprint is validated
//! // here, the classifier is fitted from the calibration sets, and the decision
//! // threshold becomes an explicit knob.
//! let engine = DetectionEngine::builder(network, program, class_paths)
//!     .threshold(0.5)
//!     .calibrate(&benign, &adversarial)
//!     .build()?;
//!
//! // Online: serve a whole batch through one fused NCHW trace (batched
//! // im2col/matmul across inputs; bit-for-bit identical to per-input detect).
//! for verdict in engine.detect_batch(&adversarial)? {
//!     println!("adversarial? {}", verdict.is_adversary);
//! }
//!
//! // Or price the same batch on the co-designed hardware model by attaching
//! // `ptolemy::accel::AccelBackend` via `.backend(..)` — every batch then also
//! // yields modelled latency/energy estimates.
//! # Ok(())
//! # }
//! ```
//!
//! # Serving
//!
//! For traffic that arrives one request at a time, wrap the engine(s) in a
//! [`serve::Server`] instead of hand-rolling batches: a bounded submission
//! queue feeds N worker threads, an adaptive batch former sizes batches from
//! the backend's `estimate_batch` latency model, a cheap screening engine can
//! escalate uncertain scores to an expensive tier-2 engine — or to a set of
//! **shard** engines splitting a many-class canary set
//! (`ServerBuilder::escalate_sharded`, with tier-2 slivers pipelined against
//! the next batch's screening by default) — and an LRU cache keyed on
//! activation-path prefixes short-circuits repeated/near-duplicate inputs
//! (persistable across restarts via `CacheConfig::persist_path`).  With the
//! cache disabled, served verdicts are bit-for-bit identical to direct
//! `detect` calls on the routed engine, sharded or not.
//!
//! ```no_run
//! use ptolemy::prelude::*;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let (screen_engine, expensive_engine): (DetectionEngine, DetectionEngine) = todo!();
//! let server = Server::builder(screen_engine)
//!     .escalate(expensive_engine, 0.35, 0.65) // uncertainty band -> tier 2
//!     .workers(4)
//!     .cache(CacheConfig::default())
//!     .start()?;
//! let ticket = server.submit(Tensor::full(&[3, 8, 8], 0.5))?;
//! let served = ticket.wait()?;
//! println!("adversarial? {} (tier {:?})", served.detection.is_adversary, served.tier);
//! println!("{:#?}", server.stats());
//! # Ok(())
//! # }
//! ```
//!
//! `examples/serving.rs` runs this end to end on trained engines and prints the
//! full `ServeStats` snapshot.

#![forbid(unsafe_code)]

pub use ptolemy_accel as accel;
pub use ptolemy_attacks as attacks;
pub use ptolemy_baselines as baselines;
pub use ptolemy_compiler as compiler;
pub use ptolemy_core as core;
pub use ptolemy_data as data;
pub use ptolemy_forest as forest;
pub use ptolemy_isa as isa;
pub use ptolemy_nn as nn;
pub use ptolemy_obs as obs;
pub use ptolemy_serve as serve;
pub use ptolemy_tensor as tensor;

/// Commonly used items, re-exported for examples and integration tests.
pub mod prelude {
    pub use ptolemy_accel::AccelBackend;
    pub use ptolemy_attacks::{Attack, Bim, CarliniWagnerL2, DeepFool, Fgsm, Jsma, Pgd};
    pub use ptolemy_core::{
        path_similarity, variants, BackendEstimate, ClassPathSet, Detection, DetectionBackend,
        DetectionEngine, DetectionEngineBuilder, DetectionProgram, ExtractionSpec, Profiler,
        SoftwareBackend,
    };
    pub use ptolemy_data::{Arrivals, SyntheticDataset, WorkloadSpec, WorkloadTrace};
    pub use ptolemy_forest::{auc, RandomForest};
    pub use ptolemy_nn::{zoo, Network, TrainConfig, Trainer};
    pub use ptolemy_obs::{Clock, Registry};
    pub use ptolemy_serve::{
        AdmissionPolicy, BatchPolicy, CacheConfig, DegradePolicy, ServeError, ServeStats, Served,
        Server, ShedReason, Ticket, Tier,
    };
    pub use ptolemy_tensor::Tensor;
}
