#!/usr/bin/env bash
# Proves the bench diff gate actually gates: copies a set of current
# BENCH_*.json reports, injects a 20x wall-clock regression and a parity-flag
# violation, and asserts `bench_diff.sh` (which must pass on the pristine
# copies) rejects the doctored ones and names the offending file and metric.
#
#   scripts/bench_negative_check.sh <current_dir>
set -euo pipefail

current_dir="${1:-target/bench-ci}"
if ! ls "$current_dir"/BENCH_*.json >/dev/null 2>&1; then
    echo "no BENCH_*.json reports under $current_dir — run the bench smoke first" >&2
    exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
cp "$current_dir"/BENCH_*.json "$workdir/"

echo "== pristine copies must pass the gate =="
./scripts/bench_diff.sh benchmarks/baseline "$workdir" >/dev/null

victim="$workdir/BENCH_batch_fusion.json"
echo "== injecting 20x wall_us regression + parity violation into $(basename "$victim") =="
awk '
    /^  "wall_us":/ { sub(/[0-9]+/, $2 * 20 ",");
                      sub(/,,/, ","); print; next }
    inparity && /": 1,?$/ && !flipped { sub(/: 1/, ": 0"); flipped = 1 }
    /^  "parity": {$/ { inparity = 1 }
    /^  }/ { inparity = 0 }
    { print }
' "$current_dir/BENCH_batch_fusion.json" > "$victim"

echo "== doctored copies must fail the gate =="
if output="$(./scripts/bench_diff.sh benchmarks/baseline "$workdir" 2>&1)"; then
    echo "bench_diff.sh passed a 20x regression — the gate is not gating" >&2
    echo "$output" >&2
    exit 1
fi
if ! grep -q "BENCH_batch_fusion.json:wall_us" <<<"$output"; then
    echo "failure output does not name the regressed file:metric" >&2
    echo "$output" >&2
    exit 1
fi
if ! grep -q "BENCH_batch_fusion.json:parity\." <<<"$output"; then
    echo "failure output does not name the violated parity flag" >&2
    echo "$output" >&2
    exit 1
fi
echo "bench negative check: gate rejects injected regressions and names them"
