#!/usr/bin/env bash
# Diffs a directory of BENCH_<experiment>.json perf reports against the
# committed baseline and fails on regressions.
#
#   scripts/bench_diff.sh <baseline_dir> <current_dir>
#
# Gating rules (see crates/bench/src/emit.rs for the report schema):
#
#   * parity flags        — hard gate, exact: every parity flag that holds in
#                           the baseline must hold in the current run, and no
#                           current parity flag may be 0.
#   * lower-is-better     — metrics named *_us / *_ns / *_ms and wall_us:
#     timing metrics        fail only on a blow-up (current > 8x baseline AND
#                           above an absolute slack floor), so ordinary
#                           machine-to-machine noise never trips the gate.
#   * higher-is-better    — metrics with "throughput" in the name: fail when
#     throughput metrics    the current value drops below baseline / 8.
#   * everything else     — informational; printed, never gated.
#   * advisory flags      — never gated (they are wall-clock shape checks).
#
# Missing reports or missing baseline keys fail hard: silently dropping an
# experiment or metric is how a perf trajectory rots.
set -euo pipefail

if [[ $# -ne 2 ]]; then
    echo "usage: $0 <baseline_dir> <current_dir>" >&2
    exit 2
fi
baseline_dir="$1"
current_dir="$2"

# Absolute slack floor for lower-is-better metrics: below this many units
# (ns/us/ms) a ratio blow-up is still noise (e.g. a 40us stage becoming 400us
# on a loaded runner).
SLACK=${BENCH_DIFF_SLACK:-100000}
RATIO=${BENCH_DIFF_RATIO:-8}

# section_entries <file> <section> -> lines of "key value"
section_entries() {
    awk -v section="$2" '
        $0 ~ "^  \"" section "\": {}" { next }
        $0 ~ "^  \"" section "\": {" { open = 1; next }
        open && /^  }/ { open = 0 }
        open {
            line = $0
            gsub(/^[ \t]+"/, "", line); gsub(/",?$/, "", line)
            split(line, kv, /": */)
            value = kv[2]; gsub(/,$/, "", value)
            print kv[1], value
        }
    ' "$1"
}

failures=0
fail() {
    echo "FAIL: $*"
    failures=$((failures + 1))
}

shopt -s nullglob
baseline_reports=("$baseline_dir"/BENCH_*.json)
if [[ ${#baseline_reports[@]} -eq 0 ]]; then
    echo "no BENCH_*.json baselines under $baseline_dir" >&2
    exit 2
fi

for baseline in "${baseline_reports[@]}"; do
    name="$(basename "$baseline")"
    current="$current_dir/$name"
    if [[ ! -f "$current" ]]; then
        fail "$name: report missing from $current_dir (experiment dropped?)"
        continue
    fi

    # Parity flags: exact.
    while read -r key value; do
        [[ -n "$key" ]] || continue
        cur="$(section_entries "$current" parity | awk -v k="$key" '$1 == k { print $2 }')"
        if [[ -z "$cur" ]]; then
            fail "$name:parity.$key: flag missing from current run"
        elif [[ "$value" == "1" && "$cur" != "1" ]]; then
            fail "$name:parity.$key: baseline holds, current run VIOLATED"
        fi
    done < <(section_entries "$baseline" parity)
    while read -r key value; do
        [[ -n "$key" ]] || continue
        if [[ "$value" != "1" ]]; then
            base="$(section_entries "$baseline" parity | awk -v k="$key" '$1 == k { print $2 }')"
            [[ "$base" == "0" ]] || fail "$name:parity.$key: current run VIOLATED"
        fi
    done < <(section_entries "$current" parity)

    # Metrics: tolerance-aware by name.
    while read -r key value; do
        [[ -n "$key" ]] || continue
        cur="$(section_entries "$current" metrics | awk -v k="$key" '$1 == k { print $2 }')"
        if [[ -z "$cur" ]]; then
            fail "$name:metrics.$key: metric missing from current run"
            continue
        fi
        case "$key" in
        *throughput*)
            if ((cur * RATIO < value)); then
                fail "$name:metrics.$key: throughput collapsed ${value} -> ${cur} (gate: > baseline/${RATIO})"
            else
                echo "ok   $name:metrics.$key: ${value} -> ${cur} (higher-is-better)"
            fi
            ;;
        *_us | *_ns | *_ms | wall_us)
            if ((cur > value * RATIO && cur > value + SLACK)); then
                fail "$name:metrics.$key: regressed ${value} -> ${cur} (gate: <= ${RATIO}x baseline + ${SLACK})"
            else
                echo "ok   $name:metrics.$key: ${value} -> ${cur} (lower-is-better)"
            fi
            ;;
        *)
            echo "info $name:metrics.$key: ${value} -> ${cur} (not gated)"
            ;;
        esac
    done < <(section_entries "$baseline" metrics)

    # wall_us: top-level, lower-is-better.
    base_wall="$(awk -F': ' '/^  "wall_us":/ { gsub(/,/, "", $2); print $2 }' "$baseline")"
    cur_wall="$(awk -F': ' '/^  "wall_us":/ { gsub(/,/, "", $2); print $2 }' "$current")"
    if [[ -n "$base_wall" && -n "$cur_wall" ]]; then
        if ((cur_wall > base_wall * RATIO && cur_wall > base_wall + SLACK)); then
            fail "$name:wall_us: regressed ${base_wall} -> ${cur_wall} (gate: <= ${RATIO}x baseline + ${SLACK})"
        else
            echo "ok   $name:wall_us: ${base_wall} -> ${cur_wall}"
        fi
    fi

    # Advisory flags: report, never gate.
    while read -r key value; do
        [[ -n "$key" ]] || continue
        cur="$(section_entries "$current" advisory | awk -v k="$key" '$1 == k { print $2 }')"
        echo "adv  $name:advisory.$key: ${value} -> ${cur:-missing} (never gated)"
    done < <(section_entries "$baseline" advisory)
done

if ((failures > 0)); then
    echo "bench diff: $failures regression(s) against $baseline_dir"
    exit 1
fi
echo "bench diff: all reports within tolerance of $baseline_dir"
