#!/usr/bin/env bash
# Negative-path check for the ptolemy-lint CI gate: a gate that never fails is
# indistinguishable from a broken one, so this script proves the failure path
# works end to end.  It copies the scanned tree into a temp directory, asserts
# the clean copy passes, injects a violation, and asserts the lint exits
# non-zero naming the injected file, line and lint.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
bin="${PTOLEMY_LINT_BIN:-$root/target/release/ptolemy-lint}"
if [[ ! -x "$bin" ]]; then
    echo "ptolemy-lint binary not found at $bin — building it"
    (cd "$root" && cargo build --release -q -p ptolemy-lint)
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cp "$root/lint.toml" "$tmp/"
for sub in crates src examples tests; do
    [[ -d "$root/$sub" ]] && cp -r "$root/$sub" "$tmp/"
done

echo "== clean copy must pass"
"$bin" --root "$tmp" >/dev/null

echo "== injected violation must fail with the right span"
victim_rel="crates/tensor/src/lib.rs"
victim="$tmp/$victim_rel"
printf '\npub fn injected_violation() { todo!() }\n' >>"$victim"
line="$(wc -l <"$victim")"

set +e
out="$("$bin" --root "$tmp")"
code=$?
set -e
if [[ "$code" -ne 1 ]]; then
    echo "FAIL: expected exit code 1 on an injected violation, got $code"
    echo "$out"
    exit 1
fi
if ! grep -q "$victim_rel:$line:" <<<"$out"; then
    echo "FAIL: report does not name the injected site $victim_rel:$line"
    echo "$out"
    exit 1
fi
if ! grep -q "todo-marker" <<<"$out"; then
    echo "FAIL: report does not name the todo-marker lint"
    echo "$out"
    exit 1
fi

echo "== --json must agree"
set +e
json="$("$bin" --root "$tmp" --json)"
jcode=$?
set -e
if [[ "$jcode" -ne 1 ]] || ! grep -q '"clean":false' <<<"$json"; then
    echo "FAIL: JSON report disagrees (exit $jcode): $json"
    exit 1
fi

echo "ptolemy-lint negative-path check passed"
